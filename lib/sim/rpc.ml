module Rng = Quorum.Rng
module Metrics = Obs.Metrics
module Trace = Obs.Trace
module Prof = Obs.Prof

type 'a msg = Data of { seq : int; payload : 'a } | Ack of { seq : int }

type instruments = {
  i_sends : Metrics.counter;
  i_retransmits : Metrics.counter;
  i_duplicates : Metrics.counter;
  i_dead : Metrics.counter;
}

(* Timer-tag namespace: tag = -seq - 2, so every rpc tag is <= -2.
   Tag -1 belongs to Failure_detector; protocol tags are >= 0. *)
let tag_of_seq seq = -seq - 2
let seq_of_tag tag = -tag - 2
let owns_tag tag = tag <= -2

type 'a inflight = {
  src : int;
  dst : int;
  payload : 'a;
  mutable attempts : int;  (** transmissions performed so far *)
  mutable rto : float;  (** delay before the next retransmission *)
}

type ('a, 'wire) t = {
  timeout : float;
  backoff : float;
  jitter : float;
  cap : float;
  max_attempts : int;
  wrap : 'a msg -> 'wire;
  mutable engine : 'wire Engine.t option;
  mutable ins : instruments option;
  mutable prof : Prof.t;
  mutable next_seq : int;
  inflight : (int, 'a inflight) Hashtbl.t;  (** seq -> record *)
  seen : (int, unit) Hashtbl.t;  (** seqs already delivered *)
  mutable retransmissions : int;
  mutable duplicates : int;
  mutable dead : int;
  mutable on_dead_letter : src:int -> dst:int -> 'a -> unit;
}

let create ?(timeout = 2.0) ?(backoff = 1.6) ?(jitter = 0.3) ?cap
    ?(max_attempts = 6) ~wrap () =
  if timeout <= 0.0 then invalid_arg "Rpc.create: timeout";
  if backoff < 1.0 then invalid_arg "Rpc.create: backoff";
  if jitter < 0.0 then invalid_arg "Rpc.create: jitter";
  let cap = match cap with Some c -> c | None -> 32.0 *. timeout in
  if cap < timeout then invalid_arg "Rpc.create: cap";
  if max_attempts < 1 then invalid_arg "Rpc.create: max_attempts";
  {
    timeout;
    backoff;
    jitter;
    cap;
    max_attempts;
    wrap;
    engine = None;
    ins = None;
    prof = Prof.null;
    next_seq = 0;
    inflight = Hashtbl.create 64;
    seen = Hashtbl.create 256;
    retransmissions = 0;
    duplicates = 0;
    dead = 0;
    on_dead_letter = (fun ~src:_ ~dst:_ _ -> ());
  }

let engine_exn t =
  match t.engine with
  | Some e -> e
  | None -> invalid_arg "Rpc: bind the engine first"

let bind t engine =
  t.engine <- Some engine;
  t.prof <- Obs.prof (Engine.obs engine);
  let m = Obs.metrics (Engine.obs engine) in
  t.ins <-
    Some
      {
        i_sends =
          Metrics.counter m ~help:"rpc sends (first transmissions)"
            "rpc.sends";
        i_retransmits =
          Metrics.counter m ~help:"rpc retransmissions, by sender node"
            "rpc.retransmits";
        i_duplicates =
          Metrics.counter m ~help:"duplicate deliveries suppressed"
            "rpc.duplicates_suppressed";
        i_dead =
          Metrics.counter m
            ~help:"messages abandoned after max_attempts, by sender node"
            "rpc.dead_letters";
      }

let set_dead_letter_handler t f = t.on_dead_letter <- f

let ins_exn t =
  match t.ins with
  | Some i -> i
  | None -> invalid_arg "Rpc: bind the engine first"

let node_label node = [ ("node", string_of_int node) ]

let retransmissions t = t.retransmissions
let duplicates_suppressed t = t.duplicates
let dead_letters t = t.dead
let inflight_count t = Hashtbl.length t.inflight

let jittered t engine delay =
  if t.jitter = 0.0 then delay
  else delay *. (1.0 +. (t.jitter *. Rng.float (Engine.rng engine)))

(* Decorrelated jitter (the AWS "decorrelated" scheme): the next
   retransmission delay is drawn uniformly from [timeout, 3 * prev],
   clamped to [cap].  Consecutive retries de-synchronize instead of
   marching in lockstep, so a burst of senders cut off by the same
   fault does not produce a synchronized retransmit storm when the
   fault clears — which matters under churn, where a storm can stall a
   reconfiguration's seal round.  With [jitter = 0] the classic
   deterministic exponential backoff ([prev * backoff], capped) is
   kept, so jitter-free runs stay exactly reproducible across the
   change. *)
let next_backoff t rng ~prev =
  if t.jitter = 0.0 then min t.cap (prev *. t.backoff)
  else
    let hi = 3.0 *. prev in
    min t.cap (t.timeout +. (Rng.float rng *. (hi -. t.timeout)))

let send t ~src ~dst payload =
  let engine = engine_exn t in
  Prof.enter t.prof Prof.Rpc;
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  Hashtbl.replace t.inflight seq
    { src; dst; payload; attempts = 1; rto = t.timeout };
  Metrics.incr (ins_exn t).i_sends;
  Engine.send engine ~src ~dst (t.wrap (Data { seq; payload }));
  Engine.set_timer engine ~node:src
    ~delay:(jittered t engine t.timeout)
    ~tag:(tag_of_seq seq);
  Prof.leave t.prof Prof.Rpc

let on_message t ~node ~src msg ~deliver =
  let engine = engine_exn t in
  match msg with
  | Data { seq; payload } ->
      Prof.enter t.prof Prof.Rpc;
      (* Always (re-)ack: the previous ack may have been lost. *)
      Engine.send engine ~src:node ~dst:src (t.wrap (Ack { seq }));
      if Hashtbl.mem t.seen seq then begin
        t.duplicates <- t.duplicates + 1;
        Metrics.incr (ins_exn t).i_duplicates;
        Prof.leave t.prof Prof.Rpc
      end
      else begin
        Hashtbl.replace t.seen seq ();
        (* Leave before handing off: the protocol's work must charge to
           the dispatch category, not to rpc bookkeeping. *)
        Prof.leave t.prof Prof.Rpc;
        deliver ~src payload
      end
  | Ack { seq } ->
      Prof.enter t.prof Prof.Rpc;
      Hashtbl.remove t.inflight seq;
      Prof.leave t.prof Prof.Rpc

let on_timer t ~node ~tag =
  if not (owns_tag tag) then false
  else begin
    Prof.enter t.prof Prof.Rpc;
    let seq = seq_of_tag tag in
    (match Hashtbl.find_opt t.inflight seq with
    | None -> ()  (* acked (or the sender crashed) in the meantime *)
    | Some m ->
        if m.attempts >= t.max_attempts then begin
          Hashtbl.remove t.inflight seq;
          t.dead <- t.dead + 1;
          Metrics.incr (ins_exn t).i_dead ~labels:(node_label m.src);
          let engine = engine_exn t in
          Trace.record
            (Obs.trace (Engine.obs engine))
            ~time:(Engine.now engine) ~node:m.src ~peer:m.dst
            ~span:(Engine.span_ctx engine) ~label:"rpc.dead_letter"
            Trace.Note;
          t.on_dead_letter ~src:m.src ~dst:m.dst m.payload
        end
        else begin
          let engine = engine_exn t in
          m.attempts <- m.attempts + 1;
          m.rto <- next_backoff t (Engine.rng engine) ~prev:m.rto;
          t.retransmissions <- t.retransmissions + 1;
          Metrics.incr (ins_exn t).i_retransmits ~labels:(node_label node);
          (* The Note marks the retransmission instant inside the op's
             span window, which is what lets the critical-path analysis
             attribute the ensuing wait to "retransmit", not "queueing". *)
          Trace.record
            (Obs.trace (Engine.obs engine))
            ~time:(Engine.now engine) ~node ~peer:m.dst
            ~span:(Engine.span_ctx engine) ~label:"rpc.retransmit"
            Trace.Note;
          Engine.send engine ~src:node ~dst:m.dst
            (t.wrap (Data { seq; payload = m.payload }));
          Engine.set_timer engine ~node ~delay:m.rto ~tag
        end);
    Prof.leave t.prof Prof.Rpc;
    true
  end

let on_crash t ~node =
  (* Volatile sender state: a crashed node forgets its unacked sends.
     (Receiver-side dedup state is kept, modelling per-channel sequence
     numbers on stable storage.) *)
  let doomed =
    Hashtbl.fold
      (fun seq m acc -> if m.src = node then seq :: acc else acc)
      t.inflight []
  in
  List.iter (Hashtbl.remove t.inflight) doomed
