(** Fault schedules for the engine: crash/recovery processes plus
    network-level fault plans (loss bursts, gray failures, partitions).

    The paper's availability model is iid transient crashes with
    probability [p]; {!iid_faults} realizes it as an up/down renewal
    process whose stationary down-fraction is [p].  {!scripted} installs
    explicit (time, event) scenarios for targeted tests.

    The network plans mutate the engine's {!Network.t} at scheduled
    simulated times, so they compose freely with each other and with
    the crash processes — the building blocks of the chaos harness
    (see [Protocols.Chaos]). *)

type event = Crash of int | Recover of int | Recover_amnesiac of int

val scripted : 'msg Engine.t -> (float * event) list -> unit
(** Install the listed transitions at their absolute times.
    [Recover_amnesiac] delivers the recovery with [~amnesia:true] (see
    {!Engine.recover_at}): the node comes back having lost everything
    it did not persist in a {!Durable} store. *)

val restarts :
  ?amnesia:bool -> 'msg Engine.t -> (float * float * int list) list -> unit
(** [(at, down_for, nodes)] windows: crash every listed node at [at]
    and recover it at [at + down_for] — amnesiac when [~amnesia:true]
    (default false).  The crash-restart building block of the chaos
    recovery scenarios. *)

val iid_faults :
  ?amnesia:bool ->
  'msg Engine.t ->
  rng:Quorum.Rng.t ->
  p:float ->
  mean_downtime:float ->
  horizon:float ->
  unit
(** Every node alternates exponential up-times of mean
    [mean_downtime * (1-p)/p] and down-times of mean [mean_downtime],
    so each node is down a fraction [p] of the time, independently.
    Crashes are generated up to [horizon]; every crash gets its
    matching recovery even when it lands past [horizon], so no node is
    left permanently dead by an accident of scheduling (tested in
    [test_recovery.ml]).  [~amnesia] makes every recovery amnesiac. *)

val poisson_churn :
  ?amnesia:bool ->
  'msg Engine.t ->
  rng:Quorum.Rng.t ->
  rate:float ->
  mean_downtime:float ->
  horizon:float ->
  unit
(** Sustained membership churn: leave events arrive as a Poisson
    process of [rate] per time unit up to [horizon]; each crashes a
    uniformly-random {e live} node, which recovers after an exponential
    downtime of mean [mean_downtime] (amnesiac when [~amnesia:true]).
    The long-run expected number of simultaneously-down nodes is
    [rate * mean_downtime] (M/G/inf), clipped by the population.
    Victims are picked at runtime from the live set, so churn composes
    with [restarts], partitions and scripted faults; every crash gets
    its matching recovery even past [horizon].  Deterministic for a
    fixed seed. *)

val crash_random_subset :
  'msg Engine.t -> rng:Quorum.Rng.t -> at:float -> p:float -> unit
(** One-shot: at time [at], crash each node independently with
    probability [p] (the paper's static model snapshot). *)

val loss_burst :
  'msg Engine.t -> at:float -> duration:float -> loss:float -> unit
(** Add [loss] extra iid drop probability on the engine's network over
    [\[at, at + duration)].  Bursts must not overlap (the later end
    resets the extra loss to zero). *)

val gray_failure :
  'msg Engine.t ->
  node:int ->
  at:float ->
  duration:float ->
  slowdown:float ->
  unit
(** Make [node] gray over the window: every message into or out of it
    gains [slowdown] latency.  The node never crashes — only a
    failure detector can notice. *)

val link_windows :
  'msg Engine.t -> (float * float * int * int * float) list -> unit
(** [(at, duration, src, dst, loss)] windows: add [loss] extra drop
    probability on the {e directed} link [src -> dst] over
    [\[at, at + duration)] ([loss = 1.0] severs it), then clear it.
    One-directional windows are what make links {e asymmetric}: [dst]
    stops hearing [src] while [src] still hears [dst], so their
    failure-detector opinions of each other diverge.  Windows on the
    same ordered pair must not overlap (the later end clears the
    loss). *)

val partition_schedule :
  'msg Engine.t -> (float * float * int list) list -> unit
(** [(at, duration, group_a)] triples: install a cut isolating
    [group_a] at [at] and heal {e that} cut at [at + duration].
    Overlapping windows compose (each heal removes only its own cut —
    see {!Network.partition}). *)
