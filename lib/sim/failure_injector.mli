(** Crash/recovery schedules for the engine.

    The paper's availability model is iid transient crashes with
    probability [p]; {!iid_faults} realizes it as an up/down renewal
    process whose stationary down-fraction is [p].  {!scripted} installs
    explicit (time, event) scenarios for targeted tests. *)

type event = Crash of int | Recover of int

val scripted : 'msg Engine.t -> (float * event) list -> unit
(** Install the listed transitions at their absolute times. *)

val iid_faults :
  'msg Engine.t ->
  rng:Quorum.Rng.t ->
  p:float ->
  mean_downtime:float ->
  horizon:float ->
  unit
(** Every node alternates exponential up-times of mean
    [mean_downtime * (1-p)/p] and down-times of mean [mean_downtime],
    so each node is down a fraction [p] of the time, independently.
    Events are pre-generated up to [horizon]. *)

val crash_random_subset :
  'msg Engine.t -> rng:Quorum.Rng.t -> at:float -> p:float -> unit
(** One-shot: at time [at], crash each node independently with
    probability [p] (the paper's static model snapshot). *)
