(** Binary min-heap keyed by [(time, sequence)] — the event queue of
    the discrete-event engine.  The sequence number makes the order of
    simultaneous events deterministic (FIFO). *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Sequence numbers are assigned internally in push order. *)

val pop : 'a t -> (float * 'a) option
(** Smallest time first; ties in push order. *)

val peek_time : 'a t -> float option
