(** Node placement and pairwise latency models.

    Quorum protocols pay the round-trip to the {e farthest} quorum
    member; where processes sit therefore matters as much as how many
    are contacted.  A topology assigns each process 2D coordinates;
    latency between processes is the euclidean distance (scaled), plus
    the base cost of the network model. *)

type t

val ring : n:int -> radius:float -> t
(** Processes evenly spaced on a circle. *)

val clusters :
  Quorum.Rng.t -> sizes:int list -> spread:float -> separation:float -> t
(** Datacenter-like placement: cluster [i] is centred at distance
    [separation * i] along the x-axis, members uniformly within
    [spread] of the centre. *)

val line : n:int -> spacing:float -> t
(** Processes on a line (a chain of sites). *)

val size : t -> int
val distance : t -> int -> int -> float

val rtt : t -> from:int -> Quorum.Bitset.t -> float
(** Round-trip cost of assembling the given quorum from process
    [from]: twice the distance to the farthest member (one
    request/reply round). *)

val network : ?base_latency:float -> ?jitter:float -> t -> Network.t
(** A network whose delivery latency is [base + distance + exp jitter]
    — plug into [Engine.create]. *)
