type t = { coords : (float * float) array }

let size t = Array.length t.coords

let ring ~n ~radius =
  if n <= 0 || radius <= 0.0 then invalid_arg "Topology.ring";
  {
    coords =
      Array.init n (fun i ->
          let angle = 2.0 *. Float.pi *. float_of_int i /. float_of_int n in
          (radius *. cos angle, radius *. sin angle));
  }

let clusters rng ~sizes ~spread ~separation =
  if sizes = [] then invalid_arg "Topology.clusters";
  let coords =
    List.concat
      (List.mapi
         (fun c size ->
           let cx = separation *. float_of_int c in
           List.init size (fun _ ->
               ( cx +. (spread *. (Quorum.Rng.float rng -. 0.5)),
                 spread *. (Quorum.Rng.float rng -. 0.5) )))
         sizes)
  in
  { coords = Array.of_list coords }

let line ~n ~spacing =
  if n <= 0 || spacing < 0.0 then invalid_arg "Topology.line";
  { coords = Array.init n (fun i -> (spacing *. float_of_int i, 0.0)) }

let distance t a b =
  let xa, ya = t.coords.(a) and xb, yb = t.coords.(b) in
  sqrt (((xa -. xb) ** 2.0) +. ((ya -. yb) ** 2.0))

let rtt t ~from quorum =
  2.0 *. Quorum.Bitset.fold (fun e acc -> max acc (distance t from e)) quorum 0.0

let network ?base_latency ?jitter t =
  Network.create ?base_latency ?jitter
    ~latency_of:(fun src dst -> distance t src dst)
    ()
