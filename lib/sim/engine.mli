(** Deterministic discrete-event simulation engine.

    Nodes exchange messages through a {!Network.t} and set local
    timers; the engine owns simulated time, the event queue, node
    liveness, and a split-off RNG per concern so runs are reproducible
    from a single seed.

    The message payload type is a type parameter: protocols instantiate
    ['msg] with their own variant. *)

type 'msg t

type 'msg handlers = {
  on_message : 'msg t -> node:int -> src:int -> 'msg -> unit;
  on_timer : 'msg t -> node:int -> tag:int -> unit;
  on_crash : 'msg t -> node:int -> unit;
  on_recover : 'msg t -> node:int -> unit;
}
(** Protocol callbacks.  [on_message]/[on_timer] are only invoked for
    live destination nodes. *)

val create :
  seed:int -> nodes:int -> ?network:Network.t -> 'msg handlers -> 'msg t

val nodes : 'msg t -> int
val now : 'msg t -> float
val rng : 'msg t -> Quorum.Rng.t
(** Protocol-owned RNG stream (distinct from the network's). *)

val is_live : 'msg t -> int -> bool
val live_set : 'msg t -> Quorum.Bitset.t
(** Fresh bitset of currently live nodes. *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Enqueue a message; it is silently lost if dropped by the network,
    the source is dead now, or the destination is dead at delivery
    time.  Self-sends are delivered with zero latency. *)

val broadcast : 'msg t -> src:int -> dsts:int list -> 'msg -> unit

val set_timer : 'msg t -> node:int -> delay:float -> tag:int -> unit

val crash_at : 'msg t -> time:float -> node:int -> unit
val recover_at : 'msg t -> time:float -> node:int -> unit

val schedule : 'msg t -> time:float -> (unit -> unit) -> unit
(** Run an arbitrary thunk at an absolute simulated time (workload
    injection). *)

val messages_sent : 'msg t -> int
val messages_delivered : 'msg t -> int

val run : ?until:float -> ?max_events:int -> 'msg t -> unit
(** Drain the event queue up to time [until] (default: until empty).
    [max_events] (default 10 million) guards against runaway
    protocols. *)
