(** Deterministic discrete-event simulation engine.

    Nodes exchange messages through a {!Network.t} and set local
    timers; the engine owns simulated time, the event queue, node
    liveness, and a split-off RNG per concern so runs are reproducible
    from a single seed.

    The message payload type is a type parameter: protocols instantiate
    ['msg] with their own variant.

    Events come in two flavours.  {e Foreground} events (the default)
    represent protocol work and keep {!run} alive; {e background}
    events ([~background:true]) are maintenance traffic — failure
    detector heartbeats, periodic probes — that should not by itself
    prevent a run from draining.  [run] without [~until] returns as
    soon as only background events remain.

    Every engine carries an {!Obs.t}: message, crash and drop counters
    land in its metrics registry, and foreground message lifecycles
    (send, deliver, drop — linked by a per-message uid) plus crash /
    recover transitions are appended to its trace ring.  Background
    traffic is metered but never traced, so heartbeats cannot evict the
    protocol events a causality check needs.  Observability never
    touches the engine's RNG streams: runs are bit-identical with or
    without a trace attached. *)

type 'msg t

type 'msg handlers = {
  on_message : 'msg t -> node:int -> src:int -> 'msg -> unit;
  on_timer : 'msg t -> node:int -> tag:int -> unit;
  on_crash : 'msg t -> node:int -> unit;
  on_recover : 'msg t -> node:int -> amnesia:bool -> unit;
}
(** Protocol callbacks.  [on_message]/[on_timer] are only invoked for
    live destination nodes.

    Recovery is an explicit, adversarial event: [on_recover] tells the
    protocol {e how} the node came back.  With [amnesia = false] the
    node resumes with its in-memory state intact (the classic kind
    transient-crash model); with [amnesia = true] it has lost
    everything not explicitly persisted and must rebuild from its
    {!Durable} store (replay) and/or its peers (re-join) before it may
    serve again. *)

val create :
  seed:int ->
  nodes:int ->
  ?network:Network.t ->
  ?obs:Obs.t ->
  'msg handlers ->
  'msg t
(** [?obs] is the observability sink shared by everything bound to this
    engine (rpc layer, failure detector, protocols); a fresh private
    one is created when omitted, so instrumentation is always on. *)

val obs : 'msg t -> Obs.t

(** {2 Span context}

    The engine carries an {e ambient span context}: the id of the
    {!Obs.Span} the currently-running work belongs to (-1 when none).
    {!send}, {!set_timer} and {!schedule} capture the ambient context
    into the events they enqueue, and dispatch restores it around the
    corresponding handler — so when a replica's [on_message] fires, it
    runs under the span of the client operation whose message it is
    handling, and any replies it sends (or retransmit timers it arms,
    or fsync completions it schedules) are causally tagged in turn.
    Trace events recorded by the engine carry the context in
    {!Obs.Trace.event.span}.

    Context propagation is pure bookkeeping: it never touches the
    engine's RNG streams, so runs stay bit-identical with or without
    spans being opened. *)

val span_ctx : 'msg t -> int
(** The ambient span context; -1 when none. *)

val set_span_ctx : 'msg t -> int -> unit
(** Set the ambient context (protocols call this when launching an
    operation attempt so subsequent sends are tagged). *)

val with_span_ctx : 'msg t -> int -> (unit -> 'a) -> 'a
(** Run a thunk under a given context, restoring the previous one
    afterwards (also on raise). *)

val note : ?label:string -> 'msg t -> node:int -> unit
(** Append a {!Obs.Trace.Note} event at the current simulated time,
    tagged with the ambient span context (e.g. ["rpc.retransmit"]). *)

val nodes : 'msg t -> int
val now : 'msg t -> float
val rng : 'msg t -> Quorum.Rng.t
(** Protocol-owned RNG stream (distinct from the network's). *)

val network : 'msg t -> Network.t
(** The network the engine routes messages through (for fault
    injection that mutates loss / partitions mid-run). *)

val is_live : 'msg t -> int -> bool
val live_set : 'msg t -> Quorum.Bitset.t
(** Fresh bitset of currently live nodes.  This is omniscient,
    simulation-level knowledge: protocols that claim realistic fault
    handling should consult a {!Failure_detector.t} instead. *)

val send : ?background:bool -> 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Enqueue a message; it is silently lost if dropped by the network,
    the source is dead now, or the destination is dead at delivery
    time.  Self-sends are delivered with zero latency. *)

val broadcast :
  ?background:bool -> 'msg t -> src:int -> dsts:int list -> 'msg -> unit

val set_timer :
  ?background:bool -> 'msg t -> node:int -> delay:float -> tag:int -> unit

val crash_at : 'msg t -> time:float -> node:int -> unit

val recover_at : ?amnesia:bool -> 'msg t -> time:float -> node:int -> unit
(** Schedule the node's recovery.  [~amnesia:true] (default false)
    delivers an amnesiac recovery — the handler sees
    [on_recover ~amnesia:true], the [sim.recoveries] counter is
    labeled [amnesia=true] and the trace event carries an ["amnesia"]
    label. *)

val schedule : ?background:bool -> 'msg t -> time:float -> (unit -> unit) -> unit
(** Run an arbitrary thunk at an absolute simulated time (workload
    injection).  [~background:true] schedules maintenance work that
    should not keep {!run} alive on its own. *)

val messages_sent : 'msg t -> int
(** Foreground messages sent (protocol traffic, including
    retransmissions and acks). *)

val messages_background : 'msg t -> int
(** Background messages sent (heartbeats etc.), counted separately so
    per-operation message metrics stay meaningful. *)

val messages_delivered : 'msg t -> int

val messages_dropped : 'msg t -> int
(** Messages lost in flight — by the network or to a dead destination
    (see the [sim.messages_dropped{reason=..}] metric for the split). *)

val events_dispatched : 'msg t -> int
(** Events popped off the queue and dispatched over this engine's
    lifetime (messages, timers, crashes, recoveries, thunks) — the
    denominator for events/sec and allocations/event in
    [bench engine]. *)

type outcome =
  | Drained  (** no foreground events left *)
  | Reached_until  (** stopped at the [until] horizon *)
  | Budget_exhausted  (** [max_events] dispatched without draining *)

val run_status : ?until:float -> ?max_events:int -> 'msg t -> outcome
(** Drain the event queue up to time [until] (default: until no
    foreground event remains).  [max_events] (default 10 million)
    guards against runaway protocols — e.g. a retransmission loop that
    never gives up; exhaustion is reported (and counted, see
    {!budget_exhaustions}) rather than raised. *)

val run : ?until:float -> ?max_events:int -> 'msg t -> unit
(** Like {!run_status} but raises [Failure] when the event budget is
    exhausted, so runaway protocols fail loudly. *)

val budget_exhaustions : 'msg t -> int
(** Number of times a run on this engine hit its event budget. *)
