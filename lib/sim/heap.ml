type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }
let is_empty t = t.size = 0
let length t = t.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t entry =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let data = Array.make (max 16 (2 * cap)) entry in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let push t ~time value =
  let entry = { time; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  (* Sift up. *)
  let rec up i =
    if i = 0 then t.data.(0) <- entry
    else begin
      let parent = (i - 1) / 2 in
      if before entry t.data.(parent) then begin
        t.data.(i) <- t.data.(parent);
        up parent
      end
      else t.data.(i) <- entry
    end
  in
  up t.size;
  t.size <- t.size + 1

let pop t =
  if t.size = 0 then None
  else begin
    let root = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      let last = t.data.(t.size) in
      (* Sift down. *)
      let rec down i =
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        let smallest = ref i in
        t.data.(i) <- last;
        if l < t.size && before t.data.(l) t.data.(!smallest) then smallest := l;
        if r < t.size && before t.data.(r) t.data.(!smallest) then smallest := r;
        if !smallest <> i then begin
          t.data.(i) <- t.data.(!smallest);
          down !smallest
        end
        else t.data.(i) <- last
      in
      down 0
    end;
    Some (root.time, root.value)
  end

let peek_time t = if t.size = 0 then None else Some t.data.(0).time
