module Metrics = Obs.Metrics
module Prof = Obs.Prof

type config = { fsync_latency : float; torn_tail : bool }

let config ?(fsync_latency = 0.0) ?(torn_tail = false) () =
  if fsync_latency < 0.0 then invalid_arg "Durable.config: fsync_latency";
  { fsync_latency; torn_tail }

let instant = config ()

type ins = {
  d_appends : Metrics.counter;
  d_cell_writes : Metrics.counter;
  d_lost : Metrics.counter;
  d_replayed : Metrics.counter;
  d_prof : Prof.t;
}

type 'e t = {
  n : int;
  cfg : config;
  ins : ins;
  logs : (float * int * 'e) list array;
      (** newest first: (durable_at, group, entry).  Records appended
          as one batch share a group id and an fsync window; crash
          damage is all-or-nothing per group. *)
  mutable next_group : int;
  mutable cell_hooks : (int -> float -> unit) list;
      (** crash propagation into every cell created from this store *)
}

let create ~obs ~nodes cfg =
  if nodes <= 0 then invalid_arg "Durable.create: nodes";
  let m = Obs.metrics obs in
  {
    n = nodes;
    cfg;
    ins =
      {
        d_appends =
          Metrics.counter m ~help:"log records appended" "durable.appends";
        d_cell_writes =
          Metrics.counter m ~help:"cell writes, by cell" "durable.cell_writes";
        d_lost =
          Metrics.counter m
            ~help:"writes destroyed by a crash, by kind (tail | torn | cell)"
            "durable.lost_writes";
        d_replayed =
          Metrics.counter m ~help:"log entries handed back by replay"
            "durable.replayed_entries";
        d_prof = Obs.prof obs;
      };
    logs = Array.make nodes [];
    next_group = 0;
    cell_hooks = [];
  }

let nodes t = t.n
let fsync_latency t = t.cfg.fsync_latency

let check_node t node name =
  if node < 0 || node >= t.n then invalid_arg ("Durable." ^ name ^ ": node")

(* --- Append-only log ------------------------------------------------ *)

let fresh_group t =
  let g = t.next_group in
  t.next_group <- g + 1;
  g

let append t ~node ~now e =
  check_node t node "append";
  Prof.enter t.ins.d_prof Prof.Durable;
  Metrics.incr t.ins.d_appends;
  let durable_at = now +. t.cfg.fsync_latency in
  t.logs.(node) <- (durable_at, fresh_group t, e) :: t.logs.(node);
  Prof.leave t.ins.d_prof Prof.Durable;
  durable_at

let append_batch t ~node ~now es =
  check_node t node "append_batch";
  match es with
  | [] -> now
  | es ->
      Prof.enter t.ins.d_prof Prof.Durable;
      Metrics.incr t.ins.d_appends ~by:(List.length es);
      let durable_at = now +. t.cfg.fsync_latency in
      let group = fresh_group t in
      (* One flush covers the whole batch: every record lands (or is
         destroyed) together, at one durable instant. *)
      List.iter
        (fun e -> t.logs.(node) <- (durable_at, group, e) :: t.logs.(node))
        es;
      Prof.leave t.ins.d_prof Prof.Durable;
      durable_at

let log_length t ~node =
  check_node t node "log_length";
  List.length t.logs.(node)

let replay t ~node ~now =
  check_node t node "replay";
  Prof.enter t.ins.d_prof Prof.Durable;
  let durable =
    List.filter (fun (at, _, _) -> at <= now) t.logs.(node)
    |> List.rev_map (fun (_, _, e) -> e)
  in
  Metrics.incr t.ins.d_replayed ~by:(List.length durable);
  Prof.leave t.ins.d_prof Prof.Durable;
  durable

(* Newest-first and durable_at is monotone in append order, so the
   in-flight writes are exactly a prefix of the list.  Records of one
   group share a durable_at, so a group is never split.  [at_of]
   projects the durable instant out of an entry (logs and cells store
   different tuple shapes). *)
let split_in_flight at_of ~now entries =
  let rec go = function
    | e :: rest when at_of e > now ->
        let lost, kept = go rest in
        (e :: lost, kept)
    | durable -> ([], durable)
  in
  go entries

let crash t ~node ~now =
  check_node t node "crash";
  Prof.enter t.ins.d_prof Prof.Durable;
  let lost, survived =
    split_in_flight (fun (at, _, _) -> at) ~now t.logs.(node)
  in
  let n_lost = List.length lost in
  let survived, torn =
    (* A torn tail only makes sense when the crash interrupted a
       flush: the partially written block damages the record before
       it — and a batched flush is damaged as a unit, so the whole
       newest surviving group goes. *)
    if t.cfg.torn_tail && n_lost > 0 then
      match survived with
      | (_, g, _) :: _ ->
          let torn, kept =
            List.partition (fun (_, g', _) -> g' = g) survived
          in
          (kept, List.length torn)
      | [] -> ([], 0)
    else (survived, 0)
  in
  t.logs.(node) <- survived;
  if n_lost > 0 then
    Metrics.incr t.ins.d_lost ~by:n_lost ~labels:[ ("kind", "tail") ];
  if torn > 0 then
    Metrics.incr t.ins.d_lost ~by:torn ~labels:[ ("kind", "torn") ];
  List.iter (fun hook -> hook node now) t.cell_hooks;
  Prof.leave t.ins.d_prof Prof.Durable

(* --- Typed cells ---------------------------------------------------- *)

type 'a cell = {
  c_cfg : config;
  c_ins : ins;
  c_name : string;
  pending : (float * 'a) list array;  (** newest first *)
  durable : 'a option array;
}

(* Promote every pending write whose fsync window has closed. *)
let settle c node ~now =
  let in_flight, landed = split_in_flight fst ~now c.pending.(node) in
  (match landed with (_, v) :: _ -> c.durable.(node) <- Some v | [] -> ());
  c.pending.(node) <- in_flight

let cell (type a) t ~name : a cell =
  let c =
    {
      c_cfg = t.cfg;
      c_ins = t.ins;
      c_name = name;
      pending = (Array.make t.n [] : (float * a) list array);
      durable = Array.make t.n None;
    }
  in
  t.cell_hooks <-
    (fun node now ->
      settle c node ~now;
      let lost = List.length c.pending.(node) in
      if lost > 0 then
        Metrics.incr c.c_ins.d_lost ~by:lost ~labels:[ ("kind", "cell") ];
      c.pending.(node) <- [])
    :: t.cell_hooks;
  c

let set c ~node ~now v =
  Prof.enter c.c_ins.d_prof Prof.Durable;
  Metrics.incr c.c_ins.d_cell_writes ~labels:[ ("cell", c.c_name) ];
  let durable_at =
    if c.c_cfg.fsync_latency = 0.0 then begin
      c.durable.(node) <- Some v;
      now
    end
    else begin
      settle c node ~now;
      let durable_at = now +. c.c_cfg.fsync_latency in
      c.pending.(node) <- (durable_at, v) :: c.pending.(node);
      durable_at
    end
  in
  Prof.leave c.c_ins.d_prof Prof.Durable;
  durable_at

let get c ~node =
  match c.pending.(node) with
  | (_, v) :: _ -> Some v
  | [] -> c.durable.(node)

let durable_value c ~node ~now =
  settle c node ~now;
  c.durable.(node)
