(** Network model: per-message latency, loss, and partitions.

    Deterministic given the engine's RNG.  Partitions are symmetric
    cuts of the node set: a message crosses only if its endpoints are
    on the same side of every active cut. *)

type t

val create :
  ?base_latency:float ->
  ?jitter:float ->
  ?loss:float ->
  ?latency_of:(int -> int -> float) ->
  unit ->
  t
(** [base_latency] (default 1.0 time units) plus an exponential jitter
    of mean [jitter] (default 0.2); [loss] (default 0) is an iid drop
    probability.  [latency_of src dst] (default [fun _ _ -> 0.]) adds a
    deterministic per-pair propagation term — see {!Topology}. *)

val partition : t -> group_a:int list -> unit
(** Install a cut isolating [group_a] from everyone else.  Multiple
    cuts compose. *)

val heal : t -> unit
(** Remove all cuts. *)

val delay : t -> Quorum.Rng.t -> src:int -> dst:int -> float option
(** Latency for one message, or [None] if dropped / blocked. *)
