(** Network model: per-message latency, loss, partitions, and gray
    failures.

    Deterministic given the engine's RNG.  Partitions are symmetric
    cuts of the node set: a message crosses only if its endpoints are
    on the same side of every active cut.  Cuts are identified by
    handles so overlapping partitions can be healed independently.

    Loss composes from three independent sources — the base iid rate,
    a transient {e burst} rate ({!set_extra_loss}), and per-directed-link
    rates ({!set_link_loss}).  {e Gray failures} are modelled as
    per-node latency inflation ({!set_slowdown}): the node is up but
    everything through it is slow, which is exactly what makes a
    heartbeat failure detector suspect it. *)

type t

val create :
  ?base_latency:float ->
  ?jitter:float ->
  ?loss:float ->
  ?latency_of:(int -> int -> float) ->
  unit ->
  t
(** [base_latency] (default 1.0 time units) plus an exponential jitter
    of mean [jitter] (default 0.2); [loss] (default 0) is an iid drop
    probability.  [latency_of src dst] (default [fun _ _ -> 0.]) adds a
    deterministic per-pair propagation term — see {!Topology}. *)

type cut
(** Handle for one installed partition. *)

val partition : t -> group_a:int list -> cut
(** Install a cut isolating [group_a] from everyone else.  Multiple
    cuts compose; the returned handle heals this cut specifically. *)

val heal : t -> cut -> unit
(** Remove one cut (no-op if already healed). *)

val heal_all : t -> unit
(** Remove every active cut. *)

val partitioned : t -> bool
(** Whether any cut is currently active. *)

val set_extra_loss : t -> float -> unit
(** Transient loss added on top of the base rate — set at burst start,
    reset to [0.] at burst end (see {!Failure_injector.loss_burst}). *)

val extra_loss : t -> float

val set_link_loss : t -> src:int -> dst:int -> float -> unit
(** Extra drop probability for the directed link [src -> dst]
    ([0.] clears it, [1.] severs the link). *)

val link_loss : t -> src:int -> dst:int -> float

val set_slowdown : t -> node:int -> float -> unit
(** Gray failure: add [extra] latency to every message into or out of
    [node] ([0.] clears it). *)

val slowdown : t -> node:int -> float

val delay : t -> Quorum.Rng.t -> src:int -> dst:int -> float option
(** Latency for one message, or [None] if dropped / blocked. *)
