type t = {
  mutable samples : float list;
  mutable count : int;
  mutable total : float;
  mutable min_v : float;
  mutable max_v : float;
  counters : (string, int ref) Hashtbl.t;
}

let create () =
  {
    samples = [];
    count = 0;
    total = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
    counters = Hashtbl.create 8;
  }

let add t x =
  t.samples <- x :: t.samples;
  t.count <- t.count + 1;
  t.total <- t.total +. x;
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let incr t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> Stdlib.incr r
  | None -> Hashtbl.add t.counters name (ref 1)

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let count t = t.count
let mean t = if t.count = 0 then 0.0 else t.total /. float_of_int t.count
let min_value t = t.min_v
let max_value t = t.max_v

let percentile t q =
  if t.count = 0 then invalid_arg "Stats.percentile: no samples";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.percentile: q";
  let sorted = Array.of_list t.samples in
  Array.sort compare sorted;
  let rank =
    min (t.count - 1)
      (max 0 (int_of_float (ceil (q *. float_of_int t.count)) - 1))
  in
  sorted.(rank)

let summary t =
  if t.count = 0 then "n=0"
  else
    Printf.sprintf "n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f" t.count
      (mean t) (percentile t 0.50) (percentile t 0.99) (max_value t)
