(* Generic per-destination batching: buffer items, flush when a buffer
   reaches [max_size] or when [max_delay] elapses since the buffer's
   first item.  The timer is an engine-scheduled thunk guarded by a
   generation counter, so a size-triggered flush silently retires the
   pending timer without timer-tag plumbing. *)

type 'a buf = {
  mutable items : 'a list;  (** newest first *)
  mutable count : int;
  mutable gen : int;  (** bumped on every flush; retires stale timers *)
  mutable armed : bool;
}

type 'a t = {
  max_size : int;
  max_delay : float;
  schedule : delay:float -> (unit -> unit) -> unit;
  flush_cb : dst:int -> 'a list -> unit;
  bufs : 'a buf array;
  mutable batches : int;
  mutable batched : int;
}

let create ?(max_size = 8) ?(max_delay = 0.0) ~nodes ~schedule ~flush () =
  if max_size < 1 then invalid_arg "Batcher.create: max_size";
  if max_delay < 0.0 then invalid_arg "Batcher.create: max_delay";
  if nodes <= 0 then invalid_arg "Batcher.create: nodes";
  {
    max_size;
    max_delay;
    schedule;
    flush_cb = flush;
    bufs =
      Array.init nodes (fun _ ->
          { items = []; count = 0; gen = 0; armed = false });
    batches = 0;
    batched = 0;
  }

let flush_dst t ~dst =
  let b = t.bufs.(dst) in
  if b.count > 0 then begin
    let items = List.rev b.items in
    b.items <- [];
    b.count <- 0;
    b.gen <- b.gen + 1;
    b.armed <- false;
    t.batches <- t.batches + 1;
    t.batched <- t.batched + List.length items;
    t.flush_cb ~dst items
  end

let add t ~dst item =
  let b = t.bufs.(dst) in
  b.items <- item :: b.items;
  b.count <- b.count + 1;
  if b.count >= t.max_size then flush_dst t ~dst
  else if not b.armed then begin
    b.armed <- true;
    let gen = b.gen in
    (* delay 0.0 still goes through the event queue: everything added
       during the current handler turn coalesces into one flush. *)
    t.schedule ~delay:t.max_delay (fun () ->
        if t.bufs.(dst).gen = gen then flush_dst t ~dst)
  end

let flush_all t =
  Array.iteri (fun dst _ -> flush_dst t ~dst) t.bufs

let pending t =
  Array.fold_left (fun acc b -> acc + b.count) 0 t.bufs

let batches t = t.batches
let batched t = t.batched
