module Rng = Quorum.Rng
module Bitset = Quorum.Bitset

type 'msg event =
  | Deliver of { src : int; dst : int; msg : 'msg }
  | Timer of { node : int; tag : int }
  | Crash of int
  | Recover of int
  | Thunk of (unit -> unit)

type 'msg handlers = {
  on_message : 'msg t -> node:int -> src:int -> 'msg -> unit;
  on_timer : 'msg t -> node:int -> tag:int -> unit;
  on_crash : 'msg t -> node:int -> unit;
  on_recover : 'msg t -> node:int -> unit;
}

and 'msg t = {
  n : int;
  queue : ('msg event * bool) Heap.t;  (** event, is_background *)
  live : bool array;
  network : Network.t;
  net_rng : Rng.t;
  proto_rng : Rng.t;
  handlers : 'msg handlers;
  mutable time : float;
  mutable sent : int;
  mutable background_sent : int;
  mutable delivered : int;
  mutable foreground : int;  (** queued events that keep [run] alive *)
  mutable budget_hits : int;
}

type outcome = Drained | Reached_until | Budget_exhausted

let create ~seed ~nodes ?network handlers =
  if nodes <= 0 then invalid_arg "Engine.create: nodes";
  let root = Rng.create seed in
  {
    n = nodes;
    queue = Heap.create ();
    live = Array.make nodes true;
    network = (match network with Some n -> n | None -> Network.create ());
    net_rng = Rng.split root;
    proto_rng = Rng.split root;
    handlers;
    time = 0.0;
    sent = 0;
    background_sent = 0;
    delivered = 0;
    foreground = 0;
    budget_hits = 0;
  }

let nodes t = t.n
let now t = t.time
let rng t = t.proto_rng
let network t = t.network
let is_live t i = t.live.(i)

let live_set t =
  let s = Bitset.create t.n in
  Array.iteri (fun i alive -> if alive then Bitset.add s i) t.live;
  s

let enqueue t ~time ~background ev =
  if not background then t.foreground <- t.foreground + 1;
  Heap.push t.queue ~time (ev, background)

let push t ~delay ?(background = false) ev =
  if delay < 0.0 then invalid_arg "Engine: negative delay";
  enqueue t ~time:(t.time +. delay) ~background ev

let send ?(background = false) t ~src ~dst msg =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Engine.send: bad node id";
  if t.live.(src) then begin
    if background then t.background_sent <- t.background_sent + 1
    else t.sent <- t.sent + 1;
    if src = dst then push t ~delay:0.0 ~background (Deliver { src; dst; msg })
    else
      match Network.delay t.network t.net_rng ~src ~dst with
      | None -> ()
      | Some d -> push t ~delay:d ~background (Deliver { src; dst; msg })
  end

let broadcast ?(background = false) t ~src ~dsts msg =
  List.iter (fun dst -> send ~background t ~src ~dst msg) dsts

let set_timer ?(background = false) t ~node ~delay ~tag =
  if node < 0 || node >= t.n then invalid_arg "Engine.set_timer: bad node";
  push t ~delay ~background (Timer { node; tag })

let at_absolute t ~time ev =
  if time < t.time then invalid_arg "Engine: scheduling in the past";
  enqueue t ~time ~background:false ev

let crash_at t ~time ~node = at_absolute t ~time (Crash node)
let recover_at t ~time ~node = at_absolute t ~time (Recover node)
let schedule t ~time thunk = at_absolute t ~time (Thunk thunk)

let messages_sent t = t.sent
let messages_background t = t.background_sent
let messages_delivered t = t.delivered
let budget_exhaustions t = t.budget_hits

let dispatch t = function
  | Deliver { src; dst; msg } ->
      if t.live.(dst) then begin
        t.delivered <- t.delivered + 1;
        t.handlers.on_message t ~node:dst ~src msg
      end
  | Timer { node; tag } ->
      if t.live.(node) then t.handlers.on_timer t ~node ~tag
  | Crash node ->
      if t.live.(node) then begin
        t.live.(node) <- false;
        t.handlers.on_crash t ~node
      end
  | Recover node ->
      if not t.live.(node) then begin
        t.live.(node) <- true;
        t.handlers.on_recover t ~node
      end
  | Thunk f -> f ()

let run_status ?until ?(max_events = 10_000_000) t =
  let clamp_until () =
    match until with Some u -> if u > t.time then t.time <- u | None -> ()
  in
  let rec loop budget =
    if budget = 0 then begin
      t.budget_hits <- t.budget_hits + 1;
      Budget_exhausted
    end
    else if t.foreground = 0 then begin
      (* Only background events (heartbeats, ...) remain: the
         simulation's real work has drained. *)
      clamp_until ();
      Drained
    end
    else
      match Heap.peek_time t.queue with
      | None ->
          clamp_until ();
          Drained
      | Some time ->
          let stop = match until with Some u -> time > u | None -> false in
          if stop then begin
            clamp_until ();
            Reached_until
          end
          else begin
            match Heap.pop t.queue with
            | None ->
                clamp_until ();
                Drained
            | Some (time, (ev, background)) ->
                if not background then t.foreground <- t.foreground - 1;
                t.time <- time;
                dispatch t ev;
                loop (budget - 1)
          end
  in
  loop max_events

let run ?until ?max_events t =
  match run_status ?until ?max_events t with
  | Drained | Reached_until -> ()
  | Budget_exhausted -> failwith "Engine.run: event budget exhausted"
