module Rng = Quorum.Rng
module Bitset = Quorum.Bitset
module Metrics = Obs.Metrics
module Trace = Obs.Trace
module Prof = Obs.Prof

(* Built once: hot paths must not allocate a label list per event. *)
let labels_net = [ ("reason", "net") ]
let labels_dead_dst = [ ("reason", "dead_dst") ]
let labels_amnesia_true = [ ("amnesia", "true") ]
let labels_amnesia_false = [ ("amnesia", "false") ]

type 'msg event =
  | Deliver of { src : int; dst : int; msg : 'msg; uid : int }
      (** [uid] identifies the message for trace causality links; [-1]
          for background traffic, which is metered but not traced. *)
  | Timer of { node : int; tag : int; ctx : int }
      (** [ctx] is the span context captured when the timer was set, so
          retransmit timers fire under the operation that armed them. *)
  | Crash of int
  | Recover of { node : int; amnesia : bool }
  | Thunk of { f : unit -> unit; ctx : int }

type 'msg handlers = {
  on_message : 'msg t -> node:int -> src:int -> 'msg -> unit;
  on_timer : 'msg t -> node:int -> tag:int -> unit;
  on_crash : 'msg t -> node:int -> unit;
  on_recover : 'msg t -> node:int -> amnesia:bool -> unit;
}

and instruments = {
  m_sent : Metrics.counter;
  m_background : Metrics.counter;
  m_delivered : Metrics.counter;
  m_dropped : Metrics.counter;
  m_crashes : Metrics.counter;
  m_recoveries : Metrics.counter;
}

and 'msg t = {
  n : int;
  queue : ('msg event * bool) Heap.t;  (** event, is_background *)
  live : bool array;
  network : Network.t;
  net_rng : Rng.t;
  proto_rng : Rng.t;
  handlers : 'msg handlers;
  obs : Obs.t;
  ins : instruments;
  prof : Prof.t;
  tracing : bool;  (** trace ring has capacity; guards record call sites *)
  msg_ctx : (int, int) Hashtbl.t;  (** uid -> span ctx, in-flight only *)
  mutable ctx : int;  (** ambient span context; -1 = none *)
  mutable next_uid : int;
  mutable time : float;
  mutable sent : int;
  mutable background_sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable dispatched : int;  (** events handed to [dispatch] *)
  mutable foreground : int;  (** queued events that keep [run] alive *)
  mutable budget_hits : int;
}

type outcome = Drained | Reached_until | Budget_exhausted

let make_instruments m =
  {
    m_sent =
      Metrics.counter m ~help:"foreground messages sent" "sim.messages_sent";
    m_background =
      Metrics.counter m ~help:"background messages sent (heartbeats...)"
        "sim.messages_background";
    m_delivered =
      Metrics.counter m ~help:"messages handed to on_message"
        "sim.messages_delivered";
    m_dropped =
      Metrics.counter m
        ~help:"messages lost in flight, by reason (net | dead_dst)"
        "sim.messages_dropped";
    m_crashes = Metrics.counter m ~help:"node crash events" "sim.crashes";
    m_recoveries =
      Metrics.counter m ~help:"node recovery events" "sim.recoveries";
  }

let create ~seed ~nodes ?network ?obs handlers =
  if nodes <= 0 then invalid_arg "Engine.create: nodes";
  let root = Rng.create seed in
  let obs = match obs with Some o -> o | None -> Obs.create () in
  {
    n = nodes;
    queue = Heap.create ();
    live = Array.make nodes true;
    network = (match network with Some n -> n | None -> Network.create ());
    net_rng = Rng.split root;
    proto_rng = Rng.split root;
    handlers;
    obs;
    ins = make_instruments (Obs.metrics obs);
    prof = Obs.prof obs;
    tracing = Trace.capacity (Obs.trace obs) > 0;
    msg_ctx = Hashtbl.create 64;
    ctx = -1;
    next_uid = 0;
    time = 0.0;
    sent = 0;
    background_sent = 0;
    delivered = 0;
    dropped = 0;
    dispatched = 0;
    foreground = 0;
    budget_hits = 0;
  }

let nodes t = t.n
let now t = t.time
let rng t = t.proto_rng
let network t = t.network
let obs t = t.obs
let is_live t i = t.live.(i)

let live_set t =
  let s = Bitset.create t.n in
  Array.iteri (fun i alive -> if alive then Bitset.add s i) t.live;
  s

let trace t = Obs.trace t.obs

(* Span context: an ambient span id that send/set_timer/schedule capture
   and dispatch restores around handlers, so causality crosses both the
   network and the event queue without protocols threading it by hand. *)
let span_ctx t = t.ctx
let set_span_ctx t ctx = t.ctx <- ctx

let with_span_ctx t ctx f =
  let saved = t.ctx in
  t.ctx <- ctx;
  Fun.protect ~finally:(fun () -> t.ctx <- saved) f

let ctx_of_uid t uid =
  match Hashtbl.find_opt t.msg_ctx uid with Some c -> c | None -> -1

let forget_uid t uid = if uid >= 0 then Hashtbl.remove t.msg_ctx uid

let note ?(label = "") t ~node =
  if t.tracing then
    Trace.record (trace t) ~time:t.time ~node ~span:t.ctx ~label Trace.Note

let enqueue t ~time ~background ev =
  if not background then t.foreground <- t.foreground + 1;
  Prof.enter t.prof Prof.Heap;
  Heap.push t.queue ~time (ev, background);
  Prof.leave t.prof Prof.Heap

let push t ~delay ?(background = false) ev =
  if delay < 0.0 then invalid_arg "Engine: negative delay";
  enqueue t ~time:(t.time +. delay) ~background ev

let drop t ~labels =
  t.dropped <- t.dropped + 1;
  Metrics.incr t.ins.m_dropped ~labels

let send ?(background = false) t ~src ~dst msg =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Engine.send: bad node id";
  if t.live.(src) then begin
    let uid =
      (* Background traffic (heartbeats) would flood the trace ring and
         evict the protocol messages the causality check cares about,
         so it is metered but never traced. *)
      if background then begin
        t.background_sent <- t.background_sent + 1;
        Metrics.incr t.ins.m_background;
        -1
      end
      else begin
        t.sent <- t.sent + 1;
        Metrics.incr t.ins.m_sent;
        let uid = t.next_uid in
        t.next_uid <- uid + 1;
        if t.tracing then
          Trace.record (trace t) ~time:t.time ~node:src ~peer:dst ~msg_id:uid
            ~span:t.ctx Trace.Send;
        (* -1 means "no context" and is the lookup default; anything
           else — including the sampled-out sentinel — must ride along
           so the receiver's children share the root's sampling fate. *)
        if t.ctx <> -1 then Hashtbl.replace t.msg_ctx uid t.ctx;
        uid
      end
    in
    if src = dst then
      push t ~delay:0.0 ~background (Deliver { src; dst; msg; uid })
    else
      match Network.delay t.network t.net_rng ~src ~dst with
      | None ->
          drop t ~labels:labels_net;
          if not background then begin
            if t.tracing then
              Trace.record (trace t) ~time:t.time ~node:src ~peer:dst
                ~msg_id:uid ~span:t.ctx ~label:"net" Trace.Drop;
            forget_uid t uid
          end
      | Some d -> push t ~delay:d ~background (Deliver { src; dst; msg; uid })
  end

let broadcast ?(background = false) t ~src ~dsts msg =
  List.iter (fun dst -> send ~background t ~src ~dst msg) dsts

let set_timer ?(background = false) t ~node ~delay ~tag =
  if node < 0 || node >= t.n then invalid_arg "Engine.set_timer: bad node";
  push t ~delay ~background (Timer { node; tag; ctx = t.ctx })

let at_absolute t ~time ~background ev =
  if time < t.time then invalid_arg "Engine: scheduling in the past";
  enqueue t ~time ~background ev

let crash_at t ~time ~node = at_absolute t ~time ~background:false (Crash node)

let recover_at ?(amnesia = false) t ~time ~node =
  at_absolute t ~time ~background:false (Recover { node; amnesia })

let schedule ?(background = false) t ~time thunk =
  at_absolute t ~time ~background (Thunk { f = thunk; ctx = t.ctx })

let messages_sent t = t.sent
let messages_background t = t.background_sent
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped
let events_dispatched t = t.dispatched
let budget_exhaustions t = t.budget_hits

(* Restore the saved ambient context and close the probe on the handler's
   exception path; the happy path inlines the same two steps.  Written
   out per branch rather than through [with_span_ctx] so dispatch
   allocates no closure per event. *)
let[@inline] reraise t cat saved e =
  let bt = Printexc.get_raw_backtrace () in
  t.ctx <- saved;
  Prof.leave t.prof cat;
  Printexc.raise_with_backtrace e bt

let dispatch t ~background = function
  | Deliver { src; dst; msg; uid } ->
      let ctx = ctx_of_uid t uid in
      forget_uid t uid;
      if t.live.(dst) then begin
        t.delivered <- t.delivered + 1;
        Metrics.incr t.ins.m_delivered;
        if not background && t.tracing then
          Trace.record (trace t) ~time:t.time ~node:dst ~peer:src ~msg_id:uid
            ~span:ctx Trace.Deliver;
        (* The handler runs under the sender's span context: replies it
           sends (and timers it arms) inherit the operation that caused
           this delivery. *)
        let saved = t.ctx in
        t.ctx <- ctx;
        Prof.enter t.prof Prof.Dispatch_msg;
        (try t.handlers.on_message t ~node:dst ~src msg
         with e -> reraise t Prof.Dispatch_msg saved e);
        t.ctx <- saved;
        Prof.leave t.prof Prof.Dispatch_msg
      end
      else begin
        drop t ~labels:labels_dead_dst;
        if not background && t.tracing then
          Trace.record (trace t) ~time:t.time ~node:dst ~peer:src ~msg_id:uid
            ~span:ctx ~label:"dead_dst" Trace.Drop
      end
  | Timer { node; tag; ctx } ->
      if t.live.(node) then begin
        let saved = t.ctx in
        t.ctx <- ctx;
        Prof.enter t.prof Prof.Dispatch_timer;
        (try t.handlers.on_timer t ~node ~tag
         with e -> reraise t Prof.Dispatch_timer saved e);
        t.ctx <- saved;
        Prof.leave t.prof Prof.Dispatch_timer
      end
  | Crash node ->
      if t.live.(node) then begin
        t.live.(node) <- false;
        Metrics.incr t.ins.m_crashes;
        if t.tracing then
          Trace.record (trace t) ~time:t.time ~node Trace.Crash;
        let saved = t.ctx in
        t.ctx <- -1;
        Prof.enter t.prof Prof.Dispatch_recovery;
        (try t.handlers.on_crash t ~node
         with e -> reraise t Prof.Dispatch_recovery saved e);
        t.ctx <- saved;
        Prof.leave t.prof Prof.Dispatch_recovery
      end
  | Recover { node; amnesia } ->
      if not t.live.(node) then begin
        t.live.(node) <- true;
        Metrics.incr t.ins.m_recoveries
          ~labels:(if amnesia then labels_amnesia_true else labels_amnesia_false);
        if t.tracing then
          if amnesia then
            Trace.record (trace t) ~time:t.time ~node ~label:"amnesia"
              Trace.Recover
          else Trace.record (trace t) ~time:t.time ~node Trace.Recover;
        let saved = t.ctx in
        t.ctx <- -1;
        Prof.enter t.prof Prof.Dispatch_recovery;
        (try t.handlers.on_recover t ~node ~amnesia
         with e -> reraise t Prof.Dispatch_recovery saved e);
        t.ctx <- saved;
        Prof.leave t.prof Prof.Dispatch_recovery
      end
  | Thunk { f; ctx } ->
      let saved = t.ctx in
      t.ctx <- ctx;
      Prof.enter t.prof Prof.Thunk;
      (try f () with e -> reraise t Prof.Thunk saved e);
      t.ctx <- saved;
      Prof.leave t.prof Prof.Thunk

let run_status ?until ?(max_events = 10_000_000) t =
  let clamp_until () =
    match until with Some u -> if u > t.time then t.time <- u | None -> ()
  in
  let rec loop budget =
    if budget = 0 then begin
      t.budget_hits <- t.budget_hits + 1;
      Budget_exhausted
    end
    else if t.foreground = 0 then begin
      (* Only background events (heartbeats, ...) remain: the
         simulation's real work has drained. *)
      clamp_until ();
      Drained
    end
    else
      match Heap.peek_time t.queue with
      | None ->
          clamp_until ();
          Drained
      | Some time ->
          let stop = match until with Some u -> time > u | None -> false in
          if stop then begin
            clamp_until ();
            Reached_until
          end
          else begin
            Prof.enter t.prof Prof.Heap;
            let popped = Heap.pop t.queue in
            Prof.leave t.prof Prof.Heap;
            match popped with
            | None ->
                clamp_until ();
                Drained
            | Some (time, (ev, background)) ->
                if not background then t.foreground <- t.foreground - 1;
                t.time <- time;
                t.dispatched <- t.dispatched + 1;
                dispatch t ~background ev;
                loop (budget - 1)
          end
  in
  (* The loop probe brackets the whole drain, so every category of a
     profiled run nests inside it and the report's total is the run's
     wall time — self time lands in [Loop] for the loop's own
     bookkeeping (peeks, budget and drain checks). *)
  Prof.enter t.prof Prof.Loop;
  match loop max_events with
  | outcome ->
      Prof.leave t.prof Prof.Loop;
      outcome
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      Prof.leave t.prof Prof.Loop;
      Printexc.raise_with_backtrace e bt

let run ?until ?max_events t =
  match run_status ?until ?max_events t with
  | Drained | Reached_until -> ()
  | Budget_exhausted -> failwith "Engine.run: event budget exhausted"
