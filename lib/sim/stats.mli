(** Lightweight metric accumulators for simulation runs. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one sample (e.g. a latency). *)

val incr : t -> string -> unit
(** Bump a named counter. *)

val counter : t -> string -> int

val count : t -> int
val mean : t -> float
val min_value : t -> float
val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t 0.99] — nearest-rank on the recorded samples.
    Raises on an empty accumulator. *)

val summary : t -> string
(** One-line "n=.. mean=.. p50=.. p99=.. max=.." rendering. *)
