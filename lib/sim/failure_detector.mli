(** Heartbeat failure detector: suspected-live views without
    simulation omniscience.

    Every node broadcasts a heartbeat each [period]; node [i] {e
    suspects} node [j] according to the detector's {!mode}:

    - {!Fixed_timeout} [tau]: suspect when nothing was heard for more
      than [tau] — the classic eventually-perfect heartbeat detector,
      and the historical behaviour of this module.
    - {!Accrual}: the phi-accrual family.  Each (observer, peer) pair
      keeps a sliding [window] of inter-arrival times; the suspicion
      level is [phi = log10(e) * elapsed / mean_interarrival]
      (the exponential-tail approximation of Hayashibara et al.'s
      detector) and the pair is suspected once [phi >= threshold].
      Until [min_samples] inter-arrivals have been observed the pair
      falls back to the fixed [timeout].  Silences longer than
      [timeout] are not folded into the window — they are failures,
      not latency variation.

    Protocols select quorums from {!view} — the set of nodes the
    caller does {e not} suspect — instead of the engine's omniscient
    live-set, so crash detection, gray failures (slow nodes miss the
    timeout or inflate phi) and partitions (the far side goes silent)
    all flow through one mechanism.  {!suspicion} exposes the graded
    level (normalized so [>= 1.0] means suspected in either mode) for
    suspicion-aware routing and hedging.

    Properties under the simulator's fault model (matching the classic
    eventually-perfect detector; executable as qcheck properties in
    [test_fd.ml]):
    - {e completeness}: a crashed node stops beating and is suspected
      by every live node within [timeout] + one period;
    - {e eventual accuracy}: after recovery (or a partition heal)
      heartbeats resume and suspicion clears within one period plus
      network latency.

    Accuracy is also {e measured} against the engine's oracle, sampled
    once per beat period at each observer: detection latency (crash to
    first suspicion, [fd.detection_latency]), false-positive onsets
    ([fd.false_positives]), per-sample false suspicions
    ([fd.false_suspicions], historical), missed-detection samples
    ([fd.missed_suspicions]) and suspicion transitions
    ([fd.transitions]); {!stats} reads the per-observer totals back.
    The oracle's crash clock advances at beat granularity, so
    latencies are accurate to within one period.

    Heartbeats ride the engine as {e background} traffic: they do not
    keep [Engine.run] alive and are counted in
    [Engine.messages_background], not [messages_sent].

    Wiring: embed a beat constructor in the protocol's wire type, pass
    the constant as [beat], call {!heard} when it arrives, route
    [on_timer] through {!on_timer} (tag [-1] is reserved) and call
    {!on_recover} from the engine's recovery handler so the node's
    heartbeat chain restarts and its stale opinions reset. *)

type 'wire t

type mode =
  | Fixed_timeout of float
      (** suspect after this many time units of silence *)
  | Accrual of { threshold : float; window : int; min_samples : int }
      (** suspect when the accrual level [phi] reaches [threshold];
          [window] recent inter-arrivals per pair, fixed-timeout
          fallback until [min_samples] of them exist *)

val create :
  ?period:float ->
  ?timeout:float ->
  ?mode:mode ->
  nodes:int ->
  beat:'wire ->
  unit ->
  'wire t
(** [period] defaults to 1.0, [timeout] to 5.0; [timeout] must exceed
    [period] or everyone would flap between beats.  [mode] defaults to
    [Fixed_timeout timeout] — exactly the historical detector.  In
    [Accrual] mode [timeout] remains the cold-start fallback and the
    inter-arrival admission cap.  Raises [Invalid_argument] on a
    non-positive threshold, [window < 2] or [min_samples] outside
    [1..window]. *)

val bind : 'wire t -> 'wire Engine.t -> unit
val start : 'wire t -> unit
(** Begin heartbeating (staggered across nodes).  Call once, after
    {!bind}. *)

val heard : 'wire t -> node:int -> from:int -> unit
(** Record that [node] received [from]'s heartbeat now. *)

val on_timer : 'wire t -> node:int -> tag:int -> bool
(** Handle a heartbeat timer; [false] when [tag] is not the detector's
    (protocol should handle it). *)

val on_recover : 'wire t -> node:int -> unit
(** Restart the recovered node's heartbeat chain and reset its
    suspicions (it presumes everyone live until proven otherwise). *)

val suspects : 'wire t -> node:int -> int -> bool
(** [suspects t ~node j]: does [node] currently suspect [j]?  A node
    never suspects itself. *)

val suspicion : 'wire t -> node:int -> int -> float
(** The graded suspicion level of [j] as seen by [node], normalized so
    that [>= 1.0] coincides with {!suspects} (up to the strict/large
    comparison at exactly 1.0): [elapsed / timeout] in fixed mode,
    [phi / threshold] in accrual mode.  [0.0] for self. *)

val view : 'wire t -> node:int -> Quorum.Bitset.t
(** The suspected-live set from [node]'s perspective (includes
    [node]). *)

type stats = {
  detections : int;  (** dead peers this observer started suspecting *)
  mean_detect : float;  (** mean crash-to-suspicion latency *)
  max_detect : float;
  false_positives : int;  (** suspicion onsets against live peers *)
  missed : int;
      (** beat samples where a peer dead beyond [timeout + period] was
          still unsuspected *)
  transitions : int;  (** suspicion flips, either direction *)
}

val stats : 'wire t -> node:int -> stats
(** Per-observer accuracy totals, measured against the engine's
    oracle at beat granularity. *)

val suspected_count : 'wire t -> node:int -> int
val period : 'wire t -> float
val timeout : 'wire t -> float
val mode : 'wire t -> mode
