(** Heartbeat failure detector: suspected-live views without
    simulation omniscience.

    Every node broadcasts a heartbeat each [period]; node [i] {e
    suspects} node [j] when it has not heard from [j] for more than
    [timeout].  Protocols select quorums from {!view} — the set of
    nodes the caller does {e not} suspect — instead of the engine's
    omniscient live-set, so crash detection, gray failures (slow nodes
    miss the timeout) and partitions (the far side goes silent) all
    flow through one mechanism.

    Properties under the simulator's fault model (matching the classic
    eventually-perfect detector):
    - {e completeness}: a crashed node stops beating and is suspected
      by every live node within [timeout] + one period;
    - {e eventual accuracy}: after recovery (or a partition heal)
      heartbeats resume and suspicion clears within one period plus
      network latency.

    Heartbeats ride the engine as {e background} traffic: they do not
    keep [Engine.run] alive and are counted in
    [Engine.messages_background], not [messages_sent].

    Wiring: embed a beat constructor in the protocol's wire type, pass
    the constant as [beat], call {!heard} when it arrives, route
    [on_timer] through {!on_timer} (tag [-1] is reserved) and call
    {!on_recover} from the engine's recovery handler so the node's
    heartbeat chain restarts and its stale opinions reset. *)

type 'wire t

val create :
  ?period:float ->
  ?timeout:float ->
  nodes:int ->
  beat:'wire ->
  unit ->
  'wire t
(** [period] defaults to 1.0, [timeout] to 5.0; [timeout] must exceed
    [period] or everyone would flap between beats. *)

val bind : 'wire t -> 'wire Engine.t -> unit
val start : 'wire t -> unit
(** Begin heartbeating (staggered across nodes).  Call once, after
    {!bind}. *)

val heard : 'wire t -> node:int -> from:int -> unit
(** Record that [node] received [from]'s heartbeat now. *)

val on_timer : 'wire t -> node:int -> tag:int -> bool
(** Handle a heartbeat timer; [false] when [tag] is not the detector's
    (protocol should handle it). *)

val on_recover : 'wire t -> node:int -> unit
(** Restart the recovered node's heartbeat chain and reset its
    suspicions (it presumes everyone live until proven otherwise). *)

val suspects : 'wire t -> node:int -> int -> bool
(** [suspects t ~node j]: does [node] currently suspect [j]?  A node
    never suspects itself. *)

val view : 'wire t -> node:int -> Quorum.Bitset.t
(** The suspected-live set from [node]'s perspective (includes
    [node]). *)

val suspected_count : 'wire t -> node:int -> int
val period : 'wire t -> float
val timeout : 'wire t -> float
