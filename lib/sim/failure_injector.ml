module Rng = Quorum.Rng

type event = Crash of int | Recover of int | Recover_amnesiac of int

let scripted engine events =
  List.iter
    (fun (time, ev) ->
      match ev with
      | Crash node -> Engine.crash_at engine ~time ~node
      | Recover node -> Engine.recover_at engine ~time ~node
      | Recover_amnesiac node ->
          Engine.recover_at ~amnesia:true engine ~time ~node)
    events

let restarts ?(amnesia = false) engine windows =
  List.iter
    (fun (at, down_for, nodes) ->
      if at < 0.0 || down_for <= 0.0 then
        invalid_arg "Failure_injector.restarts: window";
      List.iter
        (fun node ->
          Engine.crash_at engine ~time:at ~node;
          Engine.recover_at ~amnesia engine ~time:(at +. down_for) ~node)
        nodes)
    windows

let iid_faults ?(amnesia = false) engine ~rng ~p ~mean_downtime ~horizon =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Failure_injector.iid_faults: p";
  if mean_downtime <= 0.0 || horizon <= 0.0 then
    invalid_arg "Failure_injector.iid_faults: times";
  let mean_uptime = mean_downtime *. (1.0 -. p) /. p in
  for node = 0 to Engine.nodes engine - 1 do
    (* Pre-generate this node's alternating renewal process. *)
    let rec cycle time =
      let up = Rng.exponential rng ~mean:mean_uptime in
      let down = Rng.exponential rng ~mean:mean_downtime in
      let crash_time = time +. up in
      if crash_time < horizon then begin
        Engine.crash_at engine ~time:crash_time ~node;
        let recover_time = crash_time +. down in
        Engine.recover_at ~amnesia engine ~time:recover_time ~node;
        if recover_time < horizon then cycle recover_time
      end
    in
    cycle 0.0
  done

(* Sustained churn: leave events arrive as a Poisson process of [rate]
   per time unit; each crashes a uniformly-random {e live} node for an
   exponential downtime.  Unlike [iid_faults] the victim depends on who
   is live at the instant the event fires, so the schedule cannot be
   pre-generated — each event is a background thunk that picks its
   victim at runtime and re-arms the next arrival.  Determinism is
   preserved: the engine's event order is deterministic and all draws
   come from the caller's seeded [rng]. *)
let poisson_churn ?(amnesia = false) engine ~rng ~rate ~mean_downtime ~horizon
    =
  if rate <= 0.0 then invalid_arg "Failure_injector.poisson_churn: rate";
  if mean_downtime <= 0.0 || horizon <= 0.0 then
    invalid_arg "Failure_injector.poisson_churn: times";
  let rec arm time =
    let next = time +. Rng.exponential rng ~mean:(1.0 /. rate) in
    if next < horizon then
      Engine.schedule ~background:true engine ~time:next (fun () ->
          let live = Quorum.Bitset.to_list (Engine.live_set engine) in
          (match live with
          | [] -> ()  (* nobody left to kill; the event is a no-op *)
          | _ ->
              let node = Rng.pick rng (Array.of_list live) in
              let down = Rng.exponential rng ~mean:mean_downtime in
              Engine.crash_at engine ~time:next ~node;
              (* Every crash gets its recovery, even past the horizon:
                 churn never leaves a node permanently dead. *)
              Engine.recover_at ~amnesia engine ~time:(next +. down) ~node);
          arm next)
  in
  arm 0.0

let crash_random_subset engine ~rng ~at ~p =
  for node = 0 to Engine.nodes engine - 1 do
    if Rng.bernoulli rng p then Engine.crash_at engine ~time:at ~node
  done

(* --- Network fault plans (bursts, gray failures, partitions) -------- *)

let check_window ~at ~duration name =
  if at < 0.0 || duration <= 0.0 then
    invalid_arg (Printf.sprintf "Failure_injector.%s: window" name)

let loss_burst engine ~at ~duration ~loss =
  check_window ~at ~duration "loss_burst";
  if loss < 0.0 || loss >= 1.0 then
    invalid_arg "Failure_injector.loss_burst: loss";
  let net = Engine.network engine in
  Engine.schedule engine ~time:at (fun () -> Network.set_extra_loss net loss);
  Engine.schedule engine ~time:(at +. duration) (fun () ->
      Network.set_extra_loss net 0.0)

let gray_failure engine ~node ~at ~duration ~slowdown =
  check_window ~at ~duration "gray_failure";
  if slowdown <= 0.0 then invalid_arg "Failure_injector.gray_failure";
  let net = Engine.network engine in
  Engine.schedule engine ~time:at (fun () ->
      Network.set_slowdown net ~node slowdown);
  Engine.schedule engine ~time:(at +. duration) (fun () ->
      Network.set_slowdown net ~node 0.0)

let link_windows engine plans =
  let net = Engine.network engine in
  List.iter
    (fun (at, duration, src, dst, loss) ->
      check_window ~at ~duration "link_windows";
      if loss <= 0.0 || loss > 1.0 then
        invalid_arg "Failure_injector.link_windows: loss";
      Engine.schedule engine ~time:at (fun () ->
          Network.set_link_loss net ~src ~dst loss);
      Engine.schedule engine ~time:(at +. duration) (fun () ->
          Network.set_link_loss net ~src ~dst 0.0))
    plans

let partition_schedule engine plans =
  let net = Engine.network engine in
  List.iter
    (fun (at, duration, group_a) ->
      check_window ~at ~duration "partition_schedule";
      let handle = ref None in
      Engine.schedule engine ~time:at (fun () ->
          handle := Some (Network.partition net ~group_a));
      Engine.schedule engine ~time:(at +. duration) (fun () ->
          match !handle with
          | Some cut ->
              Network.heal net cut;
              handle := None
          | None -> ()))
    plans
