module Rng = Quorum.Rng

type event = Crash of int | Recover of int

let scripted engine events =
  List.iter
    (fun (time, ev) ->
      match ev with
      | Crash node -> Engine.crash_at engine ~time ~node
      | Recover node -> Engine.recover_at engine ~time ~node)
    events

let iid_faults engine ~rng ~p ~mean_downtime ~horizon =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Failure_injector.iid_faults: p";
  if mean_downtime <= 0.0 || horizon <= 0.0 then
    invalid_arg "Failure_injector.iid_faults: times";
  let mean_uptime = mean_downtime *. (1.0 -. p) /. p in
  for node = 0 to Engine.nodes engine - 1 do
    (* Pre-generate this node's alternating renewal process. *)
    let rec cycle time =
      let up = Rng.exponential rng ~mean:mean_uptime in
      let down = Rng.exponential rng ~mean:mean_downtime in
      let crash_time = time +. up in
      if crash_time < horizon then begin
        Engine.crash_at engine ~time:crash_time ~node;
        let recover_time = crash_time +. down in
        if recover_time < horizon then begin
          Engine.recover_at engine ~time:recover_time ~node;
          cycle recover_time
        end
      end
    in
    cycle 0.0
  done

let crash_random_subset engine ~rng ~at ~p =
  for node = 0 to Engine.nodes engine - 1 do
    if Rng.bernoulli rng p then Engine.crash_at engine ~time:at ~node
  done
