(** Generic per-destination batching for rpc payloads.

    Items {!add}ed toward a destination are buffered and handed to the
    flush callback as one ordered list when the buffer reaches
    [max_size], or [max_delay] after the buffer's first item — with
    [max_delay = 0.0] the flush still goes through the event queue, so
    everything enqueued within one handler turn coalesces into one
    batch at the same simulated instant.

    The module is engine-agnostic: callers supply a [schedule] closure
    (normally [Sim.Engine.schedule] at [now + delay]).  Timers are
    plain scheduled thunks retired by a per-buffer generation counter,
    so no timer tags are consumed. *)

type 'a t

val create :
  ?max_size:int ->
  ?max_delay:float ->
  nodes:int ->
  schedule:(delay:float -> (unit -> unit) -> unit) ->
  flush:(dst:int -> 'a list -> unit) ->
  unit ->
  'a t
(** Defaults: [max_size = 8], [max_delay = 0.0].  Raises
    [Invalid_argument] when [max_size < 1], [max_delay < 0] or
    [nodes <= 0]. *)

val add : 'a t -> dst:int -> 'a -> unit
(** Buffer one item; may flush synchronously when the size bound is
    hit. *)

val flush_dst : 'a t -> dst:int -> unit
(** Flush one destination's buffer now (no-op when empty). *)

val flush_all : 'a t -> unit
(** Flush every non-empty buffer now — e.g. on session drain. *)

val pending : 'a t -> int
(** Items currently buffered across all destinations. *)

val batches : 'a t -> int
(** Flushes performed so far. *)

val batched : 'a t -> int
(** Items delivered through flushes so far. *)
