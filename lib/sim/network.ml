type t = {
  base_latency : float;
  jitter : float;
  loss : float;
  latency_of : int -> int -> float;
  mutable cuts : (int -> bool) list;  (** side-of-cut predicates *)
}

let create ?(base_latency = 1.0) ?(jitter = 0.2) ?(loss = 0.0)
    ?(latency_of = fun _ _ -> 0.0) () =
  if base_latency < 0.0 || jitter < 0.0 then invalid_arg "Network.create";
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Network.create: loss";
  { base_latency; jitter; loss; latency_of; cuts = [] }

let partition t ~group_a =
  let side i = List.mem i group_a in
  t.cuts <- side :: t.cuts

let heal t = t.cuts <- []

let delay t rng ~src ~dst =
  let blocked = List.exists (fun side -> side src <> side dst) t.cuts in
  if blocked then None
  else if t.loss > 0.0 && Quorum.Rng.bernoulli rng t.loss then None
  else begin
    let jitter =
      if t.jitter = 0.0 then 0.0
      else Quorum.Rng.exponential rng ~mean:t.jitter
    in
    Some (t.base_latency +. t.latency_of src dst +. jitter)
  end
