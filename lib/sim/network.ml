type cut = int

type t = {
  base_latency : float;
  jitter : float;
  loss : float;
  latency_of : int -> int -> float;
  mutable extra_loss : float;  (** transient additional loss (bursts) *)
  mutable cuts : (cut * (int -> bool)) list;  (** side-of-cut predicates *)
  mutable next_cut : cut;
  link_loss : (int * int, float) Hashtbl.t;  (** directed extra loss *)
  slowdown : (int, float) Hashtbl.t;  (** per-node added latency (gray) *)
}

let create ?(base_latency = 1.0) ?(jitter = 0.2) ?(loss = 0.0)
    ?(latency_of = fun _ _ -> 0.0) () =
  if base_latency < 0.0 || jitter < 0.0 then invalid_arg "Network.create";
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Network.create: loss";
  {
    base_latency;
    jitter;
    loss;
    latency_of;
    extra_loss = 0.0;
    cuts = [];
    next_cut = 0;
    link_loss = Hashtbl.create 16;
    slowdown = Hashtbl.create 16;
  }

let partition t ~group_a =
  let side i = List.mem i group_a in
  let id = t.next_cut in
  t.next_cut <- t.next_cut + 1;
  t.cuts <- (id, side) :: t.cuts;
  id

let heal t cut = t.cuts <- List.filter (fun (id, _) -> id <> cut) t.cuts
let heal_all t = t.cuts <- []
let partitioned t = t.cuts <> []

let set_extra_loss t p =
  if p < 0.0 || p >= 1.0 then invalid_arg "Network.set_extra_loss";
  t.extra_loss <- p

let extra_loss t = t.extra_loss

let set_link_loss t ~src ~dst p =
  if p < 0.0 || p > 1.0 then invalid_arg "Network.set_link_loss";
  if p = 0.0 then Hashtbl.remove t.link_loss (src, dst)
  else Hashtbl.replace t.link_loss (src, dst) p

let link_loss t ~src ~dst =
  match Hashtbl.find_opt t.link_loss (src, dst) with
  | Some p -> p
  | None -> 0.0

let set_slowdown t ~node extra =
  if extra < 0.0 then invalid_arg "Network.set_slowdown";
  if extra = 0.0 then Hashtbl.remove t.slowdown node
  else Hashtbl.replace t.slowdown node extra

let slowdown t ~node =
  match Hashtbl.find_opt t.slowdown node with Some s -> s | None -> 0.0

let delay t rng ~src ~dst =
  let blocked =
    List.exists (fun (_, side) -> side src <> side dst) t.cuts
  in
  if blocked then None
  else begin
    (* Independent drop causes compose into one Bernoulli draw; no RNG
       is consumed when the message cannot be dropped, so loss-free
       runs keep the exact event streams of older seeds. *)
    let keep =
      (1.0 -. t.loss) *. (1.0 -. t.extra_loss)
      *. (1.0 -. link_loss t ~src ~dst)
    in
    if keep < 1.0 && Quorum.Rng.bernoulli rng (1.0 -. keep) then None
    else begin
      let jitter =
        if t.jitter = 0.0 then 0.0
        else Quorum.Rng.exponential rng ~mean:t.jitter
      in
      Some
        (t.base_latency +. t.latency_of src dst +. jitter
        +. slowdown t ~node:src +. slowdown t ~node:dst)
    end
  end
