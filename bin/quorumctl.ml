(* quorumctl: command-line interface to the quorum-system library.

   Subcommands:
     info <spec>        structural summary (sizes, quorum count)
     fp <spec>          failure probability over a p sweep
     load <spec>        LP-optimal system load and witnessing strategy
     quorums <spec>     list the minimal quorums
     pick <spec>        sample quorums with the selection strategy
     simulate <spec>    run the mutual-exclusion simulation
     chaos <spec>       fault-scenario sweep (loss, partitions, churn...)
     churn              availability under sustained churn: static vs
                        dynamic membership (resize / timed quorums /
                        detector-driven views)
     fd                 failure-detector health under the fd stress
                        scenarios: summary + per-observer detection
                        latency and false positives
     metrics <spec>     chaos run -> metrics registry dump
                        (table/jsonl/csv/prometheus)
     trace <spec>       chaos run -> causal event trace + causality check
     report <spec>      chaos run -> markdown dashboard (latency breakdown,
                        consistency audit, trace health, engine profile)
     profile <spec>     chaos run -> engine self-profile (wall time and
                        allocations by subsystem)
     throughput         sessioned-store capacity: flat majority vs h-triang
                        vs sharded h-grid at one n, closed- or open-loop
     list               the catalogue of system specs

   Diagnostics convention (see the DIAGNOSTICS man section): "error:"
   lines are fatal and exit non-zero, "warning:" lines never change
   the exit code.

   Specs are Registry specs, e.g. "htriang(15)", "htgrid(4x6)",
   "majority(15)", "cwlog(29)". *)

open Cmdliner

let spec_arg =
  let doc = "System spec, e.g. htriang(15), htgrid(4x4), majority(15)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC" ~doc)

(* Registry specs plus the Byzantine constructions:
   masking(n,f) and boost(k,<spec>). *)
let build_extended spec =
  match Core.Registry.parse_spec spec with
  | Ok ("masking", [ n; f ]) ->
      (try
         Ok
           (Byzantine.Masking.majority_masking ~n:(int_of_string n)
              ~f:(int_of_string f))
       with Invalid_argument m | Failure m -> Error m)
  | Ok ("boost", k :: rest) ->
      let inner = String.concat "," rest in
      (match Core.Registry.build inner with
      | Ok base ->
          (try Ok (Byzantine.Masking.boost ~k:(int_of_string k) base)
           with Invalid_argument m | Failure m -> Error m)
      | Error m -> Error m)
  | Ok _ -> Core.Registry.build spec
  | Error m -> Error m

let with_system spec f =
  match build_extended spec with
  | Ok system ->
      f system;
      0
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1

(* Every "error:" line must come with a non-zero exit: commands below
   go through [die] (or [with_system]) instead of raising entry points,
   so scripts can trust the exit code. *)
let die msg =
  Printf.eprintf "error: %s\n" msg;
  exit 1

(* Advisory diagnostics: always stderr, always the "warning:" prefix,
   never an exit-code change (the DIAGNOSTICS contract).  Route every
   warning through here so the spelling cannot drift. *)
let warn fmt = Printf.eprintf ("warning: " ^^ fmt ^^ "\n")

(* Result-typed entry points render uniformly through here (same
   contract as the bench harness's Util.ok_or_die). *)
let ok_or_die = function Ok v -> v | Error msg -> die msg

let quorums_or_die system = ok_or_die (Quorum.System.quorums system)

(* --- parallelism ---------------------------------------------------- *)

let jobs_arg =
  let doc =
    "Worker domains for the analysis pool (1 = the sequential code path; \
     results are identical for any value)."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let with_jobs jobs f =
  if jobs <= 1 then f None
  else Exec.Pool.with_pool ~name:"quorumctl" ~jobs (fun pool -> f (Some pool))

(* "id:p,id:p,..." -> [(id, p); ...]; shared by fp and optimize. *)
let parse_hetero spec =
  let parse_entry entry =
    match String.split_on_char ':' entry with
    | [ id; p ] -> (
        match (int_of_string_opt (String.trim id), float_of_string_opt p) with
        | Some id, Some p -> Ok (id, p)
        | _ -> Error (Printf.sprintf "bad override %S: expected id:p" entry))
    | _ -> Error (Printf.sprintf "bad override %S: expected id:p" entry)
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | entry :: rest -> (
        match parse_entry entry with
        | Ok e -> collect (e :: acc) rest
        | Error _ as err -> err)
  in
  collect [] (String.split_on_char ',' spec)

(* --- info --------------------------------------------------------- *)

let info_cmd =
  let run spec =
    with_system spec (fun system ->
        Printf.printf "%s: %d processes\n" system.Quorum.System.name
          system.Quorum.System.n;
        match system.Quorum.System.min_quorums with
        | Some _ ->
            let quorums = quorums_or_die system in
            let stats = Analysis.Metrics.of_quorums quorums in
            Printf.printf
              "%d minimal quorums; sizes min %d avg %.2f max %d\n"
              stats.count stats.min_size stats.avg_size stats.max_size;
            Printf.printf "intersection property: %b\ncoterie (antichain): %b\n"
              (Quorum.Coterie.all_intersect quorums)
              (Quorum.Coterie.is_antichain quorums)
        | None ->
            let stats =
              Analysis.Metrics.sampled ~trials:2000 (Quorum.Rng.create 1)
                system
            in
            Printf.printf
              "quorums not enumerable; sampled sizes min %d avg %.2f max %d\n"
              stats.min_size stats.avg_size stats.max_size)
  in
  let doc = "Structural summary of a quorum system." in
  Cmd.v (Cmd.info "info" ~doc) Term.(const run $ spec_arg)

(* --- fp ----------------------------------------------------------- *)

let fp_cmd =
  let ps_arg =
    let doc = "Comma-separated crash probabilities." in
    Arg.(
      value
      & opt (list float) [ 0.05; 0.1; 0.2; 0.3; 0.4; 0.5 ]
      & info [ "p" ] ~doc)
  in
  let trials_arg =
    let doc = "Monte-Carlo trials (large universes)." in
    Arg.(value & opt int 200_000 & info [ "trials" ] ~doc)
  in
  let hetero_arg =
    let doc =
      "Per-process overrides 'id:p,id:p,...' layered over the --p value \
       (heterogeneous model; uses the first --p entry as the base)."
    in
    Arg.(value & opt (some string) None & info [ "hetero" ] ~doc)
  in
  let run spec ps trials hetero jobs =
    with_system spec (fun system ->
        with_jobs jobs (fun pool ->
            match hetero with
            | Some overrides ->
                let overrides =
                  match parse_hetero overrides with
                  | Ok o -> o
                  | Error msg -> die msg
                in
                let base = List.hd ps in
                let p_of i =
                  match List.assoc_opt i overrides with
                  | Some p -> p
                  | None -> base
                in
                let fp =
                  if system.Quorum.System.n <= 24 then
                    Analysis.Failure.exact_hetero ?pool system ~p_of
                  else
                    (Analysis.Failure.monte_carlo_hetero ?pool ~trials
                       (Quorum.Rng.create 0) system ~p_of)
                      .mean
                in
                Printf.printf "%s, base p = %.3f with %d overrides: F = %.6f\n"
                  system.Quorum.System.name base (List.length overrides) fp
            | None ->
                let exact = system.Quorum.System.n <= 26 in
                Printf.printf "%s (%s)\n" system.Quorum.System.name
                  (if exact then "exact enumeration" else "Monte Carlo");
                List.iter
                  (fun p ->
                    let fp =
                      Analysis.Failure.failure_probability ?pool
                        ~mc_trials:trials system ~p
                    in
                    Printf.printf "  F(%.3f) = %.6f\n" p fp)
                  ps))
  in
  let doc = "Failure probability over a sweep of crash probabilities." in
  Cmd.v (Cmd.info "fp" ~doc)
    Term.(const run $ spec_arg $ ps_arg $ trials_arg $ hetero_arg $ jobs_arg)

(* --- load ---------------------------------------------------------- *)

let load_cmd =
  let run spec =
    with_system spec (fun system ->
        let quorums = quorums_or_die system in
        let r =
          Analysis.Load.optimal_of_quorums ~n:system.Quorum.System.n quorums
        in
        let cn, inv = Analysis.Load.lower_bounds system in
        Printf.printf "%s\n" system.Quorum.System.name;
        Printf.printf "LP-optimal load: %.4f\n" r.load;
        Printf.printf "lower bounds (Prop. 3.3): c/n = %.4f, 1/c = %.4f\n" cn
          inv;
        Printf.printf "optimal strategy uses %d quorums, avg size %.2f\n"
          (Array.length r.strategy.Quorum.Strategy.quorums)
          (Quorum.Strategy.average_quorum_size r.strategy))
  in
  let doc = "Solve the system-load LP (Definition 3.4)." in
  Cmd.v (Cmd.info "load" ~doc) Term.(const run $ spec_arg)

(* --- quorums -------------------------------------------------------- *)

let quorums_cmd =
  let limit_arg =
    Arg.(value & opt int 50 & info [ "limit" ] ~doc:"Max quorums to print.")
  in
  let run spec limit =
    with_system spec (fun system ->
        let quorums = quorums_or_die system in
        Printf.printf "%d minimal quorums%s\n" (List.length quorums)
          (if List.length quorums > limit then
             Printf.sprintf " (showing %d)" limit
           else "");
        List.iteri
          (fun i q ->
            if i < limit then
              Printf.printf "  %s\n"
                (String.concat ","
                   (List.map string_of_int (Quorum.Bitset.to_list q))))
          quorums)
  in
  let doc = "Enumerate the minimal quorums." in
  Cmd.v (Cmd.info "quorums" ~doc) Term.(const run $ spec_arg $ limit_arg)

(* --- pick ----------------------------------------------------------- *)

let pick_cmd =
  let count_arg =
    Arg.(value & opt int 5 & info [ "n" ] ~doc:"Number of samples.")
  in
  let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"RNG seed.") in
  let dead_arg =
    Arg.(
      value & opt (list int) [] & info [ "dead" ] ~doc:"Crashed process ids.")
  in
  let run spec count seed dead =
    with_system spec (fun system ->
        let rng = Quorum.Rng.create seed in
        let live = Quorum.Bitset.universe system.Quorum.System.n in
        List.iter (Quorum.Bitset.remove live) dead;
        for _ = 1 to count do
          match system.Quorum.System.select rng ~live with
          | Some q ->
              Printf.printf "%s\n"
                (String.concat ","
                   (List.map string_of_int (Quorum.Bitset.to_list q)))
          | None -> Printf.printf "(no live quorum)\n"
        done)
  in
  let doc = "Sample quorums with the live-aware selection strategy." in
  Cmd.v
    (Cmd.info "pick" ~doc)
    Term.(const run $ spec_arg $ count_arg $ seed_arg $ dead_arg)

(* --- simulate -------------------------------------------------------- *)

let simulate_cmd =
  let requests_arg =
    Arg.(value & opt int 50 & info [ "requests" ] ~doc:"Lock requests.")
  in
  let fault_arg =
    Arg.(
      value & opt float 0.0
      & info [ "fault-p" ] ~doc:"Transient per-process downtime fraction.")
  in
  let run spec requests fault_p =
    with_system spec (fun system ->
        let mx = Protocols.Mutex.create ~system ~cs_duration:1.0 () in
        let engine =
          Sim.Engine.create ~seed:1 ~nodes:system.Quorum.System.n
            (Protocols.Mutex.handlers mx)
        in
        Protocols.Mutex.bind mx engine;
        if fault_p > 0.0 then
          Sim.Failure_injector.iid_faults engine
            ~rng:(Quorum.Rng.create 2) ~p:fault_p ~mean_downtime:10.0
            ~horizon:(float_of_int requests *. 2.0);
        Protocols.Workload.staggered_requests engine ~every:0.5
          ~count:requests (fun ~client ->
            Protocols.Mutex.request mx ~node:client);
        Sim.Engine.run engine;
        Printf.printf
          "entries %d/%d, violations %d, unavailable %d, msgs/entry %.1f\n"
          (Protocols.Mutex.entries mx)
          requests
          (Protocols.Mutex.violations mx)
          (Protocols.Mutex.unavailable mx)
          (float_of_int (Sim.Engine.messages_sent engine)
          /. float_of_int (max 1 (Protocols.Mutex.entries mx)));
        Printf.printf "wait: %s\n"
          (Obs.Metrics.summary (Protocols.Mutex.acquire_latency mx)))
  in
  let doc = "Run the quorum mutual-exclusion simulation." in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(const run $ spec_arg $ requests_arg $ fault_arg)

(* --- chaos ------------------------------------------------------------ *)

let chaos_cmd =
  let scenario_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ]
          ~doc:
            "Run one scenario (baseline, loss+burst, partition, churn-iid, \
             gray, restart, amnesia, amnesia-maj, churn, churn-amnesia, \
             churn-partition) instead of all of them.")
  in
  let horizon_arg =
    Arg.(
      value & opt float 400.0
      & info [ "horizon" ] ~doc:"Workload horizon in simulated time units.")
  in
  let seed_arg =
    Arg.(
      value & opt int 41
      & info [ "seed" ] ~doc:"RNG seed (same seed = same run, exactly).")
  in
  let protocol_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("mutex", `Mutex); ("store", `Store); ("reconfig", `Reconfig) ])
          `Mutex
      & info [ "protocol" ]
          ~doc:
            "Protocol to stress: $(b,mutex), $(b,store) or $(b,reconfig) \
             (register under epoch switches; see $(b,--next)).")
  in
  let next_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "next" ]
          ~doc:
            "With --protocol reconfig: the system to switch to mid-run \
             (default: the spec itself).")
  in
  let rf_arg =
    Arg.(
      value & opt float 0.7
      & info [ "read-fraction" ]
          ~docv:"FR"
          ~doc:
            "Read fraction of the store workload (with --protocol store).")
  in
  let run spec scenario horizon seed protocol next rf jobs =
    if horizon <= 0.0 then begin
      Printf.eprintf "error: --horizon must be positive (got %g)\n" horizon;
      exit 1
    end;
    (* The read fraction travels as a validated Analysis.Workload.t —
       the same record the optimizer consumes. *)
    let workload =
      match Analysis.Workload.make ~read_fraction:rf () with
      | Ok w -> w
      | Error msg -> die msg
    in
    with_system spec (fun system ->
        let next_spec = Option.value next ~default:spec in
        (match (protocol, next) with
        | (`Mutex | `Store), Some _ ->
            die "--next only applies to --protocol reconfig"
        | _ -> ());
        (* Fail on a bad --next before any runs start. *)
        let next_system =
          match build_extended next_spec with
          | Ok s -> s
          | Error msg -> die msg
        in
        let n = max system.Quorum.System.n next_system.Quorum.System.n in
        let scenarios =
          match scenario with
          | None ->
              Protocols.Chaos.standard ~n ~horizon
              @ Protocols.Chaos.recovery ~n ~horizon
          | Some label -> (
              match Protocols.Chaos.scenario_of_label ~n ~horizon label with
              | s -> [ s ]
              | exception Invalid_argument msg -> die msg)
        in
        (* One scenario per pool task; each task builds its own system
           so no mutable state is shared across domains.  Rows are
           collected and printed in scenario order. *)
        let fresh_system sp =
          match build_extended sp with Ok s -> s | Error msg -> die msg
        in
        let row =
          match protocol with
          | `Mutex ->
              fun s ->
                let system = fresh_system spec in
                Protocols.Chaos.mutex_row
                  (Protocols.Chaos.run_mutex ~seed ~system s)
          | `Store ->
              fun s ->
                let system = fresh_system spec in
                Protocols.Chaos.store_row
                  (Protocols.Chaos.run_store ~seed ~workload
                     ~read_system:system ~write_system:system
                     ~name:system.Quorum.System.name s)
          | `Reconfig ->
              fun s ->
                let initial = fresh_system spec in
                let next = fresh_system next_spec in
                Protocols.Chaos.reconfig_row
                  (Protocols.Chaos.run_reconfig ~seed ~initial ~next
                     ~name:
                       (initial.Quorum.System.name ^ "->"
                      ^ next.Quorum.System.name)
                     s)
        in
        let header =
          match protocol with
          | `Mutex -> Protocols.Chaos.mutex_header ()
          | `Store -> Protocols.Chaos.store_header ()
          | `Reconfig -> Protocols.Chaos.reconfig_header ()
        in
        let rows =
          with_jobs jobs (fun pool ->
              match pool with
              | None -> List.map row scenarios
              | Some pool ->
                  Array.to_list
                    (Exec.Pool.map_array pool row (Array.of_list scenarios)))
        in
        Printf.printf "%s\n" header;
        List.iter (fun r -> Printf.printf "%s\n" r) rows)
  in
  let doc =
    "Run the chaos harness (loss, bursts, partitions, churn, gray failures, \
     crash-restart and amnesia windows) against a quorum system."
  in
  Cmd.v
    (Cmd.info "chaos" ~doc)
    Term.(
      const run $ spec_arg $ scenario_arg $ horizon_arg $ seed_arg
      $ protocol_arg $ next_arg $ rf_arg $ jobs_arg)

(* --- churn ------------------------------------------------------------ *)

let churn_cmd =
  let mode_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("static", `Static); ("resize", `Resize); ("timed", `Timed);
               ("fd", `Fd); ("all", `All);
             ])
          `All
      & info [ "mode" ]
          ~doc:
            "Membership mode: $(b,static) (t=0 placement forever), \
             $(b,resize) (replace/grow/shrink controller), $(b,timed) \
             (resize + timed-quorum leases), $(b,fd) (resize with the \
             controller's liveness opinion taken from the members' \
             quorum-merged failure-detector views) or $(b,all).")
  in
  let rate_arg =
    Arg.(
      value & opt float 0.18
      & info [ "rate" ]
          ~doc:
            "Churn rate: leave events per time unit (expected \
             simultaneously-down population is rate * downtime).")
  in
  let downtime_arg =
    Arg.(
      value & opt float 130.0
      & info [ "downtime" ] ~doc:"Mean downtime of a churned-out process.")
  in
  let universe_arg =
    Arg.(
      value & opt int 30
      & info [ "universe" ] ~doc:"Number of processes in the universe.")
  in
  let rows_arg =
    Arg.(
      value & opt int 5
      & info [ "rows" ] ~doc:"Initial h-triang rows (n = rows(rows+1)/2).")
  in
  let horizon_arg =
    Arg.(
      value & opt float 300.0
      & info [ "horizon" ] ~doc:"Workload horizon in simulated time units.")
  in
  let seed_arg =
    Arg.(
      value & opt int 45
      & info [ "seed" ] ~doc:"RNG seed (same seed = same run, exactly).")
  in
  let period_arg =
    Arg.(
      value & opt float 8.0
      & info [ "period" ] ~doc:"Membership controller tick period.")
  in
  let lease_arg =
    Arg.(
      value & opt float 3.0
      & info [ "lease" ] ~doc:"Lease duration for $(b,timed) mode.")
  in
  let run mode rate downtime universe rows horizon seed period lease =
    if rate < 0.0 || downtime <= 0.0 || horizon <= 0.0 then
      die "rate must be >= 0, downtime and horizon positive";
    let n = rows * (rows + 1) / 2 in
    if n > universe then die "universe smaller than the initial triangle";
    let scenario =
      {
        Protocols.Chaos.label = Printf.sprintf "churn r%g/d%g" rate downtime;
        horizon;
        plan =
          {
            Protocols.Chaos.calm with
            loss = 0.02;
            churn_sustained = Some (rate, downtime);
          };
      }
    in
    let modes =
      match mode with
      | `Static -> [ Protocols.Chaos.Static ]
      | `Resize -> [ Protocols.Chaos.Resize ]
      | `Timed -> [ Protocols.Chaos.Timed ]
      | `Fd -> [ Protocols.Chaos.Fd ]
      | `All ->
          [ Protocols.Chaos.Static; Protocols.Chaos.Resize;
            Protocols.Chaos.Timed; Protocols.Chaos.Fd ]
    in
    Printf.printf "%s\n" (Protocols.Chaos.churn_header ());
    List.iter
      (fun mode ->
        let r =
          Protocols.Chaos.run_churn ~seed ~period ~lease ~mode ~universe
            ~rows scenario
        in
        Printf.printf "%s\n" (Protocols.Chaos.churn_row r))
      modes;
    0
  in
  let doc =
    "Availability under sustained Poisson join/leave churn: a \
     dynamic-membership h-triang register (replace/grow/shrink controller, \
     optionally timed-quorum leases) against the static baseline."
  in
  Cmd.v
    (Cmd.info "churn" ~doc)
    Term.(
      const run $ mode_arg $ rate_arg $ downtime_arg $ universe_arg
      $ rows_arg $ horizon_arg $ seed_arg $ period_arg $ lease_arg)

(* --- fd --------------------------------------------------------------- *)

let fd_cmd =
  let scenario_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ]
          ~doc:
            "Run one scenario instead of the default set (churn-iid plus \
             the fd stress family: gray-flap, asym-link, suspect-burst).")
  in
  let horizon_arg =
    Arg.(
      value & opt float 300.0
      & info [ "horizon" ] ~doc:"Workload horizon in simulated time units.")
  in
  let seed_arg =
    Arg.(
      value & opt int 47
      & info [ "seed" ]
          ~doc:
            "RNG seed (default 47, the pinned bench fd seed; same seed = \
             same run, exactly).")
  in
  let timeout_arg =
    Arg.(
      value & opt float 5.0
      & info [ "timeout" ]
          ~doc:
            "Fixed-timeout detection horizon (also the accrual warm-up \
             fallback).")
  in
  let phi_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "phi" ]
          ~doc:
            "Phi-accrual suspicion threshold; omitting it selects the \
             fixed-timeout detector.")
  in
  let hedge_arg =
    Arg.(
      value & flag
      & info [ "hedge" ]
          ~doc:
            "Hedge straggling quorum RPCs to a backup replica after the \
             per-peer latency quantile.")
  in
  let per_node_arg =
    Arg.(
      value & flag
      & info [ "per-node" ]
          ~doc:
            "Also print each observer's detection-latency / false-positive \
             totals (against the engine oracle).")
  in
  let run spec scenario horizon seed timeout phi hedge per_node =
    if horizon <= 0.0 then die "--horizon must be positive";
    with_system spec (fun system ->
        let n = system.Quorum.System.n in
        let scenarios =
          match scenario with
          | None ->
              Protocols.Chaos.scenario_of_label ~n ~horizon "churn-iid"
              :: Protocols.Chaos.fd_family ~n ~horizon
          | Some label -> (
              match Protocols.Chaos.scenario_of_label ~n ~horizon label with
              | s -> [ s ]
              | exception Invalid_argument msg -> die msg)
        in
        Printf.printf "%s\n" (Protocols.Chaos.fd_header ());
        List.iter
          (fun s ->
            let r, store =
              Protocols.Chaos.run_fd_h ~seed ~fd_timeout:timeout ?accrual:phi
                ~hedge ~read_system:system ~write_system:system
                ~name:system.Quorum.System.name s
            in
            Printf.printf "%s\n" (Protocols.Chaos.fd_row r);
            if r.Protocols.Chaos.stale_reads > 0 then
              die
                (Printf.sprintf "%d stale reads under %s"
                   r.Protocols.Chaos.stale_reads r.Protocols.Chaos.label);
            if per_node then begin
              Printf.printf
                "  %4s %6s %7s %7s %5s %6s %5s\n" "node" "detect" "meanlat"
                "maxlat" "fpos" "missed" "flips";
              for node = 0 to n - 1 do
                let st =
                  Protocols.Replicated_store.fd_stats store ~node
                in
                Printf.printf
                  "  %4d %6d %7.2f %7.2f %5d %6d %5d\n" node
                  st.Sim.Failure_detector.detections
                  st.Sim.Failure_detector.mean_detect
                  st.Sim.Failure_detector.max_detect
                  st.Sim.Failure_detector.false_positives
                  st.Sim.Failure_detector.missed
                  st.Sim.Failure_detector.transitions
              done
            end)
          scenarios)
  in
  let doc =
    "Failure-detector health under the fd stress scenarios (gray flap, \
     asymmetric links, false-suspicion bursts, churn): detection latency, \
     false positives and missed detections against the engine oracle, \
     plus the client-visible cost (hedges, degraded writes, p99)."
  in
  Cmd.v (Cmd.info "fd" ~doc)
    Term.(
      const run $ spec_arg $ scenario_arg $ horizon_arg $ seed_arg
      $ timeout_arg $ phi_arg $ hedge_arg $ per_node_arg)

(* --- metrics / trace --------------------------------------------------- *)

(* Both commands drive one chaos scenario with an externally owned
   Obs.t so the registry / trace survive the run and can be dumped. *)

let obs_scenario_arg =
  Arg.(
    value & opt string "loss+burst"
    & info [ "scenario" ]
        ~doc:
          "Chaos scenario to run: baseline, loss+burst, partition, \
           churn-iid, gray, restart, amnesia, amnesia-maj, churn, \
           churn-amnesia or churn-partition.")

let obs_horizon_arg =
  Arg.(
    value & opt float 400.0
    & info [ "horizon" ] ~doc:"Workload horizon in simulated time units.")

let obs_seed_arg =
  Arg.(
    value & opt int 41
    & info [ "seed" ] ~doc:"RNG seed (same seed = same run, exactly).")

let obs_protocol_arg =
  Arg.(
    value
    & opt (enum [ ("mutex", `Mutex); ("store", `Store) ]) `Mutex
    & info [ "protocol" ] ~doc:"Protocol to run: $(b,mutex) or $(b,store).")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~doc:"Write the dump to this file instead of stdout.")

let run_chaos_scenario ~obs ~system ~scenario ~horizon ~seed protocol =
  let n = system.Quorum.System.n in
  match Protocols.Chaos.scenario_of_label ~n ~horizon scenario with
  | exception Invalid_argument msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  | s -> (
      match protocol with
      | `Mutex -> ignore (Protocols.Chaos.run_mutex ~seed ~obs ~system s)
      | `Store ->
          ignore
            (Protocols.Chaos.run_store ~seed ~obs ~read_system:system
               ~write_system:system ~name:system.Quorum.System.name s))

let emit_to out emit =
  match out with
  | None -> emit stdout
  | Some path ->
      Obs.Sink.with_file path emit;
      Printf.eprintf "wrote %s\n" path

let metrics_cmd =
  let format_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("table", `Table); ("jsonl", `Jsonl); ("csv", `Csv);
               ("prometheus", `Prometheus);
             ])
          `Table
      & info [ "format" ]
          ~doc:
            "Output format: $(b,table) (human-readable registry dump, the \
             default), $(b,jsonl) (one JSON object per sample), $(b,csv), \
             or $(b,prometheus) (text exposition format 0.0.4: counters as \
             *_total, histograms as summaries with 0.5/0.9/0.99 \
             quantiles).")
  in
  let run spec scenario horizon seed protocol format out =
    with_system spec (fun system ->
        let obs = Obs.create () in
        run_chaos_scenario ~obs ~system ~scenario ~horizon ~seed protocol;
        let m = Obs.metrics obs in
        emit_to out (fun oc ->
            match format with
            | `Table -> output_string oc (Obs.Metrics.render m)
            | `Jsonl -> Obs.Sink.metrics_jsonl oc m
            | `Csv -> Obs.Sink.metrics_csv oc m
            | `Prometheus -> Obs.Sink.metrics_prometheus oc m))
  in
  let doc =
    "Run one chaos scenario and dump the full metrics registry (message, \
     rpc, failure-detector and protocol instruments)."
  in
  Cmd.v (Cmd.info "metrics" ~doc)
    Term.(
      const run $ spec_arg $ obs_scenario_arg $ obs_horizon_arg $ obs_seed_arg
      $ obs_protocol_arg $ format_arg $ out_arg)

let trace_cmd =
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("jsonl", `Jsonl); ("csv", `Csv) ]) `Jsonl
      & info [ "format" ] ~doc:"Output format: $(b,jsonl) or $(b,csv).")
  in
  let capacity_arg =
    Arg.(
      value & opt int 65536
      & info [ "capacity" ]
          ~doc:"Trace ring capacity (events); oldest events are evicted first.")
  in
  let run spec scenario horizon seed protocol format capacity out =
    match build_extended spec with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Ok system ->
        let obs = Obs.create ~trace_capacity:capacity () in
        run_chaos_scenario ~obs ~system ~scenario ~horizon ~seed protocol;
        let tr = Obs.trace obs in
        emit_to out (fun oc ->
            match format with
            | `Jsonl -> Obs.Sink.trace_jsonl oc tr
            | `Csv -> Obs.Sink.trace_csv oc tr);
        Printf.eprintf "trace: %d events recorded, %d buffered, %d evicted\n"
          (Obs.Trace.recorded tr) (Obs.Trace.length tr) (Obs.Trace.dropped tr);
        (* Loud but exit-code-neutral: an overwritten ring is a degraded
           dump, not a failed run. *)
        if Obs.Trace.dropped tr > 0 then
          warn
            "the ring overwrote %d events (metered as obs.trace.dropped); \
             causal chains through the evicted prefix are broken — re-run \
             with a larger --capacity for a complete trace"
            (Obs.Trace.dropped tr);
        (match Obs.Trace.causality_violations tr with
        | [] ->
            Printf.eprintf
              "causality: ok (every deliver links to a recorded send)\n";
            0
        | vs when Obs.Trace.dropped tr > 0 ->
            (* Violations on an overwritten ring are the eviction's
               doing, not the run's: advisory, exit-neutral. *)
            warn
              "%d deliver(s) without a matching send (expected: their \
               sends were evicted by the ring)"
              (List.length vs);
            0
        | vs ->
            Printf.eprintf
              "error: causality: %d deliver(s) without a matching send\n"
              (List.length vs);
            1)
  in
  let doc =
    "Run one chaos scenario, dump the causal event trace \
     (send/deliver/drop/crash/recover), and verify send->deliver causality \
     (non-zero exit only on a violation with an intact ring; violations \
     explained by ring eviction are warnings)."
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run $ spec_arg $ obs_scenario_arg $ obs_horizon_arg $ obs_seed_arg
      $ obs_protocol_arg $ format_arg $ capacity_arg $ out_arg)

(* --- report ----------------------------------------------------------- *)

let report_cmd =
  let protocol_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("mutex", Protocols.Run_report.Mutex);
               ("store", Protocols.Run_report.Store);
               ("reconfig", Protocols.Run_report.Reconfig);
               ("throughput", Protocols.Run_report.Throughput);
             ])
          Protocols.Run_report.Store
      & info [ "protocol" ]
          ~doc:
            "Protocol to report on: $(b,mutex), $(b,store) (default), \
             $(b,reconfig) or $(b,throughput) (the sessioned store driven \
             closed-loop).")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ]
          ~doc:
            "RNG seed (default: the protocol's pinned chaos seed — mutex \
             41, store 42, reconfig 43, throughput 46 — matching the \
             bench harness).")
  in
  let next_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "next" ]
          ~doc:
            "With --protocol reconfig: the system to switch to mid-run \
             (default: the spec itself).")
  in
  let capacity_arg =
    Arg.(
      value
      & opt int (1 lsl 19)
      & info [ "capacity" ]
          ~doc:
            "Trace ring capacity (events); the default is large enough \
             that standard runs evict nothing.")
  in
  let run spec scenario horizon seed protocol next capacity out =
    with_system spec (fun system ->
        let next =
          match next with
          | None -> None
          | Some _ when protocol <> Protocols.Run_report.Reconfig ->
              die "--next only applies to --protocol reconfig"
          | Some sp -> (
              match build_extended sp with
              | Ok s -> Some s
              | Error msg -> die msg)
        in
        let r =
          match
            Protocols.Run_report.run ?seed ~horizon ~trace_capacity:capacity
              ?next ~protocol ~system ~scenario ()
          with
          | r -> r
          | exception Invalid_argument msg -> die msg
        in
        emit_to out (fun oc ->
            output_string oc (Protocols.Run_report.to_markdown r)))
  in
  let doc =
    "Run one fully-observed chaos scenario and render a markdown dashboard: \
     chaos summary, per-operation latency percentiles with critical-path \
     breakdown (network / fsync / queueing / retransmit), the \
     consistency-audit verdict with witnessing evidence, trace-ring health \
     and the metrics registry."
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(
      const run $ spec_arg $ obs_scenario_arg $ obs_horizon_arg $ seed_arg
      $ protocol_arg $ next_arg $ capacity_arg $ out_arg)

(* --- profile ---------------------------------------------------------- *)

let profile_cmd =
  let keep_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "span-sample" ] ~docv:"K"
          ~doc:
            "Keep 1 in $(docv) root spans (deterministic, seed-keyed; \
             descendants follow their root, so surviving trees are \
             complete).  0 drops all spans, 1 keeps all.  Sampling is \
             behaviorally inert: the simulated run is unchanged.")
  in
  let run spec scenario horizon seed protocol keep out =
    with_system spec (fun system ->
        let obs =
          match
            Obs.create ~trace_capacity:(1 lsl 19) ~profile:true
              ?span_keep_1_in:keep ()
          with
          | obs -> obs
          | exception Invalid_argument msg -> die msg
        in
        run_chaos_scenario ~obs ~system ~scenario ~horizon ~seed protocol;
        let p = Obs.prof obs in
        let r = Obs.Prof.report p in
        emit_to out (fun oc ->
            Printf.fprintf oc
              "Engine self-profile: chaos %s on %s, seed %d, horizon %g\n\
               Real wall time and minor-heap allocation of the simulator \
               itself,\nby subsystem; shares are of the probed total.\n\n"
              scenario system.Quorum.System.name seed horizon;
            output_string oc (Obs.Prof.render p));
        if r.Obs.Prof.truncated > 0 || r.Obs.Prof.unbalanced > 0 then
          warn
            "probe stack anomalies (%d truncated, %d unbalanced) — \
             attribution is approximate"
            r.Obs.Prof.truncated r.Obs.Prof.unbalanced)
  in
  let doc =
    "Run one chaos scenario with the engine self-profiler on and print \
     where the simulator's real wall time and allocations went \
     (dispatch, rpc, durable log, trace/metrics/span recording).  \
     Profiling is behaviorally inert — the simulated results equal an \
     unprofiled run's — so the breakdown describes the run the other \
     subcommands replay.  For events/sec and allocations/event across \
     observability configurations, see the $(b,bench engine) target."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const run $ spec_arg $ obs_scenario_arg $ obs_horizon_arg $ obs_seed_arg
      $ obs_protocol_arg $ keep_arg $ out_arg)

(* --- throughput ------------------------------------------------------- *)

let throughput_cmd =
  let n_arg =
    Arg.(
      value & opt int 15
      & info [ "n" ] ~docv:"N" ~doc:"Universe size (one session per node).")
  in
  let shards_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ]
          ~doc:"Shard count for the sharded h-grid arm (default n/4).")
  in
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("closed", `Closed); ("open", `Open) ]) `Closed
      & info [ "mode" ]
          ~doc:
            "$(b,closed) keeps every session's pipeline window full \
             (measures capacity); $(b,open) offers Poisson arrivals at \
             $(b,--rate) regardless of capacity (measures queue growth and \
             shedding).")
  in
  let rate_arg =
    Arg.(
      value & opt float 12.0
      & info [ "rate" ] ~doc:"Open-loop offered ops per time unit.")
  in
  let window_arg =
    Arg.(
      value & opt int 6
      & info [ "window" ] ~doc:"In-flight ops per session (pipelining).")
  in
  let batch_arg =
    Arg.(
      value & opt int 4
      & info [ "batch" ]
          ~doc:
            "Requests coalesced per Batch_req envelope (1 = unbatched wire \
             messages).")
  in
  let horizon_arg =
    Arg.(
      value & opt float 200.0
      & info [ "horizon" ] ~doc:"Load window in simulated time units.")
  in
  let seed_arg =
    Arg.(
      value & opt int 46
      & info [ "seed" ]
          ~doc:
            "RNG seed (default 46, the pinned bench throughput seed; same \
             seed = same run, exactly).")
  in
  let scenario_arg =
    Arg.(
      value & opt string "baseline"
      & info [ "scenario" ]
          ~doc:"Chaos scenario to run under (as in $(b,quorumctl chaos)).")
  in
  let run n shards mode rate window batch horizon seed scenario =
    if n < 3 then die "throughput: need n >= 3";
    if horizon <= 0.0 then die "throughput: --horizon must be positive";
    let s =
      match Protocols.Chaos.scenario_of_label ~n ~horizon scenario with
      | s -> s
      | exception Invalid_argument msg -> die msg
    in
    let arms = ok_or_die (Protocols.Throughput.arms ?shards ~n ()) in
    let mode =
      match mode with
      | `Closed -> Protocols.Throughput.Closed
      | `Open -> Protocols.Throughput.Open rate
    in
    Printf.printf "%s\n" (Protocols.Throughput.header ());
    List.iter
      (fun arm ->
        let r =
          Protocols.Throughput.run_arm ~seed ~mode ~window ~batch_size:batch
            arm s
        in
        Printf.printf "%s\n" (Protocols.Throughput.row r);
        if r.Protocols.Throughput.stale_reads > 0 then
          die
            (Printf.sprintf "%d stale reads in the %s arm"
               r.Protocols.Throughput.stale_reads
               r.Protocols.Throughput.system))
      arms;
    0
  in
  let doc =
    "Sessioned-store throughput at one universe size: flat majority vs \
     h-triang vs sharded h-grid, with pipelined sessions, request batching \
     and per-request service cost — the flat-vs-hierarchical capacity \
     comparison of bench throughput, one n at a time."
  in
  Cmd.v (Cmd.info "throughput" ~doc)
    Term.(
      const run $ n_arg $ shards_arg $ mode_arg $ rate_arg $ window_arg
      $ batch_arg $ horizon_arg $ seed_arg $ scenario_arg)

(* --- nd --------------------------------------------------------------- *)

let nd_cmd =
  let run spec =
    with_system spec (fun system ->
        if system.Quorum.System.n > 26 then
          Printf.printf "%s: universe too large for the exact check\n"
            system.Quorum.System.name
        else begin
          let nd =
            Quorum.Coterie.is_non_dominated ~n:system.Quorum.System.n
              (Quorum.System.avail_mask_exn system)
          in
          Printf.printf "%s: %s\n" system.Quorum.System.name
            (if nd then "non-dominated (F(1/2) = 1/2 exactly)"
             else "dominated (a better coterie exists)")
        end)
  in
  let doc = "Exact non-domination check (Garcia-Molina & Barbara)." in
  Cmd.v (Cmd.info "nd" ~doc) Term.(const run $ spec_arg)

(* --- masking ----------------------------------------------------------- *)

let masking_cmd =
  let run spec =
    with_system spec (fun system ->
        match system.Quorum.System.min_quorums with
        | None ->
            Printf.printf "%s: quorums not enumerable\n"
              system.Quorum.System.name
        | Some _ ->
            let quorums = quorums_or_die system in
            let k = Byzantine.Masking.min_pairwise_intersection quorums in
            Printf.printf
              "%s: min pairwise intersection %d -> masks f = %d Byzantine, \
               disseminates to f = %d\n"
              system.Quorum.System.name k ((k - 1) / 2) (k - 1))
  in
  let doc = "Byzantine intersection level of the coterie." in
  Cmd.v (Cmd.info "masking" ~doc) Term.(const run $ spec_arg)

(* --- optimize -------------------------------------------------------- *)

let optimize_cmd =
  let rf_arg =
    let doc = "Fraction of operations that are reads, in [0,1]." in
    Arg.(value & opt float 0.5 & info [ "read-fraction"; "r" ] ~docv:"FR" ~doc)
  in
  let f_arg =
    let doc =
      "Resilience target: every candidate must survive every crash set of \
       this size."
    in
    Arg.(value & opt int 1 & info [ "f"; "resilience" ] ~docv:"F" ~doc)
  in
  let n_arg =
    let doc = "Universe size to sweep the catalogue over." in
    Arg.(value & opt int 15 & info [ "n" ] ~docv:"N" ~doc)
  in
  let p_arg =
    let doc = "Iid crash probability (the base under --hetero)." in
    Arg.(value & opt float 0.1 & info [ "p" ] ~docv:"P" ~doc)
  in
  let hetero_arg =
    let doc =
      "Per-process overrides 'id:p,id:p,...' layered over --p \
       (heterogeneous failure model)."
    in
    Arg.(value & opt (some string) None & info [ "hetero" ] ~doc)
  in
  let topology_arg =
    let doc =
      "Latency model pricing quorum round trips: $(b,none), $(b,ring) \
       (unit-radius circle) or $(b,line) (unit-spaced chain)."
    in
    Arg.(value & opt string "none" & info [ "topology" ] ~docv:"MODEL" ~doc)
  in
  let trials_arg =
    let doc = "Sampling trials (Monte-Carlo / empirical strategies)." in
    Arg.(value & opt int 50_000 & info [ "trials" ] ~doc)
  in
  let seed_arg =
    let doc = "Base RNG seed (per-candidate streams derive from it)." in
    Arg.(value & opt int 47 & info [ "seed" ] ~doc)
  in
  let run rf f n p hetero topology trials seed jobs =
    let failures =
      match hetero with
      | None -> Ok (Analysis.Workload.Iid p)
      | Some overrides -> (
          match parse_hetero overrides with
          | Error _ as e -> e
          | Ok overrides -> Analysis.Workload.hetero ~n ~base:p overrides)
    in
    let latency =
      match topology with
      | "none" -> Ok Analysis.Workload.No_latency
      | "ring" ->
          Ok (Analysis.Workload.Topology (Sim.Topology.ring ~n ~radius:1.0))
      | "line" ->
          Ok (Analysis.Workload.Topology (Sim.Topology.line ~n ~spacing:1.0))
      | other ->
          Error
            (Printf.sprintf "unknown topology %S (none, ring or line)" other)
    in
    match (failures, latency) with
    | Error e, _ | _, Error e -> die e
    | Ok failures, Ok latency -> (
        match
          Analysis.Workload.make ~failures ~latency ~resilience:f
            ~read_fraction:rf ()
        with
        | Error e -> die e
        | Ok workload ->
            with_jobs jobs (fun pool ->
                match
                  Analysis.Optimizer.sweep ?pool ~trials ~seed ~workload ~n ()
                with
                | Error e -> die e
                | Ok report ->
                    print_string (Analysis.Optimizer.render report));
            0)
  in
  let doc =
    "Sweep the catalogue for the workload and print the Pareto frontier \
     over (load, availability, quorum RTT, quorum size), with an \
     explanation for every candidate left off it."
  in
  Cmd.v (Cmd.info "optimize" ~doc)
    Term.(
      const run $ rf_arg $ f_arg $ n_arg $ p_arg $ hetero_arg $ topology_arg
      $ trials_arg $ seed_arg $ jobs_arg)

(* --- list ------------------------------------------------------------ *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Core.Registry.entry) ->
        Printf.printf "%-15s %-16s %-18s %s\n" e.family e.arity e.example
          e.doc)
      Core.Registry.catalogue;
    0
  in
  let doc =
    "List the catalogue of system families (family, arguments, example, \
     description)."
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* The SPECS manual section is generated from the registry catalogue,
   so the CLI help can never drift from what actually builds. *)
let specs_man =
  `S "SYSTEM SPECS"
  :: `P
       "Every subcommand takes a system spec of the form \
        $(i,family)($(i,args)). Known families (also: $(b,quorumctl \
        list)):"
  :: List.map
       (fun (e : Core.Registry.entry) ->
         `I
           ( Printf.sprintf "$(b,%s)(%s)" e.family e.arity,
             Printf.sprintf "%s — e.g. %s" e.doc e.example ))
       Core.Registry.catalogue
  @ [
      `P
        "The CLI additionally accepts the Byzantine wrappers \
         $(b,masking)(n,f) and $(b,boost)(k,spec).";
      `S "DIAGNOSTICS";
      `P
        "Every subcommand shares one stderr convention: a line starting \
         with $(b,error:) is fatal and the command exits non-zero; a line \
         starting with $(b,warning:) is advisory and never affects the \
         exit code. Informational notes (e.g. \"wrote FILE\") carry no \
         prefix.";
      `P
        "$(b,quorumctl trace) applies the convention to its causality \
         check: delivers without a recorded send exit non-zero only when \
         the trace ring is intact; when the ring evicted events they are \
         the expected consequence of the eviction and are reported as a \
         warning.";
    ]

let () =
  let doc = "Inspect and analyze the quorum systems of the reproduction." in
  let main =
    Cmd.group
      (Cmd.info "quorumctl" ~version:"1.0" ~doc ~man:specs_man)
      [
        info_cmd; fp_cmd; load_cmd; quorums_cmd; pick_cmd; simulate_cmd;
        chaos_cmd; churn_cmd; fd_cmd; metrics_cmd; trace_cmd; report_cmd;
        profile_cmd; throughput_cmd; nd_cmd; masking_cmd; optimize_cmd;
        list_cmd;
      ]
  in
  (* Cmdliner renders one-character names as short options only; accept
     the natural "--f 1" / "--n 15" / "--p 0.1" spellings too. *)
  let argv =
    Array.map
      (fun a ->
        match a with
        | "--f" | "--n" | "--p" | "--r" -> String.sub a 1 2
        | _ -> a)
      Sys.argv
  in
  exit (Cmd.eval' ~argv main)
