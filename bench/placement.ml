(* Latency/placement benchmark (extension): per-request RTT of each
   construction on datacenter-like topologies, with latency-optimal vs
   load-balancing quorum selection, and an end-to-end geo-distributed
   mutual-exclusion run. *)

module Topology = Sim.Topology
module Rng = Quorum.Rng

let three_clusters rng n =
  let a = (n + 2) / 3 in
  let b = (n - a + 1) / 2 in
  let c = n - a - b in
  Topology.clusters rng ~sizes:[ a; b; c ] ~spread:1.0 ~separation:10.0

(* Each spec's line is an independent computation (fresh system, fresh
   RNGs), so the sweeps run one spec per pool task under --jobs and
   print the collected lines in spec order. *)
let spec_lines specs line =
  let tasks = Array.of_list (List.map (fun spec () -> line spec) specs) in
  let lines =
    match Util.pool () with
    | None -> Array.map (fun task -> task ()) tasks
    | Some pool -> Exec.Pool.map_array pool (fun task -> task ()) tasks
  in
  Array.iter print_string lines

let analysis () =
  Util.print_header
    "Placement (extension): quorum RTT on a 3-datacenter topology";
  Printf.printf
    "  (RTT = 2x distance to the farthest quorum member; clusters 10 apart,\n\
    \   members within 1; lower is better)\n";
  Printf.printf "  %-16s %-22s %-22s\n" "system" "latency-aware RTT"
    "load-balancing RTT";
  spec_lines
    [
      "majority(15)"; "hqs(5-3)"; "cwlog(14)"; "htgrid(4x4)"; "htriang(15)";
      "fpp(13)";
    ]
    (fun spec ->
      let system = Util.system spec in
      let rng = Rng.create 41 in
      let topology = three_clusters rng system.Quorum.System.n in
      let best = Analysis.Placement.mean_best_rtt system topology in
      let strat =
        Analysis.Placement.mean_strategy_rtt ~trials:3000 (Rng.create 42)
          system topology
      in
      Printf.sprintf "  %-16s %-22.2f %-22.2f\n" spec best strat);
  Printf.printf
    "\n  Ring topology (radius 10) for contrast - no locality to exploit:\n";
  spec_lines
    [ "majority(15)"; "cwlog(14)"; "htriang(15)" ]
    (fun spec ->
      let system = Util.system spec in
      let topology = Topology.ring ~n:system.Quorum.System.n ~radius:10.0 in
      Printf.sprintf "  %-16s best %-8.2f strategy %-8.2f\n" spec
        (Analysis.Placement.mean_best_rtt system topology)
        (Analysis.Placement.mean_strategy_rtt ~trials:3000 (Rng.create 43)
           system topology))

let geo_simulation () =
  Util.print_header
    "Placement: geo-distributed mutual exclusion (network latency = distance)";
  Printf.printf "  %-16s %-12s %s\n" "system" "mean wait" "p99 wait";
  List.iter
    (fun spec ->
      let system = Util.system spec in
      let rng = Rng.create 44 in
      let topology = three_clusters rng system.Quorum.System.n in
      let network = Topology.network ~base_latency:0.5 ~jitter:0.1 topology in
      let mx = Protocols.Mutex.create ~system ~cs_duration:0.5 () in
      let engine =
        Sim.Engine.create ~seed:45 ~nodes:system.Quorum.System.n ~network
          (Protocols.Mutex.handlers mx)
      in
      Protocols.Mutex.bind mx engine;
      Protocols.Workload.staggered_requests engine ~every:4.0 ~count:30
        (fun ~client -> Protocols.Mutex.request mx ~node:client);
      Sim.Engine.run engine;
      let stats = Protocols.Mutex.acquire_latency mx in
      Printf.printf "  %-16s %-12.2f %.2f   (%d/30 served, %d violations)\n"
        spec
        (Obs.Metrics.mean stats)
        (Obs.Metrics.percentile_or ~default:0.0 stats 0.99)
        (Protocols.Mutex.entries mx)
        (Protocols.Mutex.violations mx))
    [ "majority(15)"; "cwlog(14)"; "htgrid(4x4)"; "htriang(15)" ]

let run () =
  analysis ();
  geo_simulation ()
