(* Workload-optimizer benchmark: sweep the full catalogue at n = 15
   under read-heavy to write-heavy mixes on a unit ring topology,
   print the Pareto frontier per mix, locate the read fraction where
   the best resilient threshold read/write pair overtakes h-triang on
   load, and write the whole thing to BENCH_optimizer.json.

   All seeds are pinned (sweep seed 47), every metric at n = 15 is an
   exact computation (LP loads, enumerated availability), so the JSON
   is reproducible bit-for-bit — and identical under any --jobs. *)

module O = Analysis.Optimizer
module W = Analysis.Workload

let seed = 47
let n = 15
let p = 0.1
let f = 1
let trials = 50_000

let read_fractions () = if !Util.fast then [ 0.9 ] else [ 0.5; 0.9; 0.99 ]

let workload_for fr =
  Util.ok_or_die
    (W.make ~failures:(W.Iid p)
       ~latency:(W.Topology (Sim.Topology.ring ~n ~radius:1.0))
       ~resilience:f ~read_fraction:fr ())

let sweep_for fr =
  Util.ok_or_die
    (O.sweep ?pool:(Util.pool ()) ~trials ~seed ~workload:(workload_for fr)
       ~n ())

(* The first read fraction at or above the balanced mix (0.01 grid)
   where the best f-resilient threshold read/write pair carries less
   load than the baseline's LP-optimal (mix-independent) load — the
   read-heavy crossover.  (By r <-> w symmetry the same margin exists
   below 1 - that fraction on the write-heavy side.) *)
let crossover ~baseline_load =
  let rec scan i =
    if i > 100 then None
    else
      let fr = float_of_int i /. 100.0 in
      match O.best_threshold_pair ~n ~f ~read_fraction:fr with
      | Some (r, load) when load < baseline_load -> Some (fr, r, load)
      | _ -> scan (i + 1)
  in
  scan 50

let source_str = function
  | O.Lp -> "lp"
  | O.Analytic -> "analytic"
  | O.Empirical -> "empirical"

let point_json (pt : O.point) =
  Printf.sprintf
    "{\"system\": \"%s\", \"read\": \"%s\", \"write\": \"%s\", \"load\": \
     %.6f, \"availability\": %.6f, \"rtt\": %.6f, \"size\": %.4f, \
     \"source\": \"%s\"}"
    pt.O.label pt.O.read_spec pt.O.write_spec pt.O.load pt.O.availability
    pt.O.rtt pt.O.size (source_str pt.O.source)

let sweep_json fr (r : O.report) =
  Printf.sprintf
    "    {\"read_fraction\": %.2f, \"frontier\": [%s], \"dominated\": %d, \
     \"unresilient\": %d, \"errors\": %d}"
    fr
    (String.concat ", " (List.map point_json r.O.frontier))
    (List.length r.O.dominated)
    (List.length r.O.unresilient)
    (List.length r.O.errors)

let run () =
  Util.print_header
    (Printf.sprintf
       "Workload optimizer: catalogue sweep at n = %d (p = %g, f = %d, unit \
        ring)"
       n p f);
  let sweeps = List.map (fun fr -> (fr, sweep_for fr)) (read_fractions ()) in
  List.iter
    (fun (fr, (r : O.report)) ->
      Printf.printf "\n-- read fraction %.2f --\n%s" fr (O.render r))
    sweeps;
  let baseline = Util.system "htriang(15)" in
  let baseline_load = (Util.ok_or_die (Analysis.Load.try_optimal baseline)).Analysis.Load.load in
  let cross = crossover ~baseline_load in
  (match cross with
  | Some (fr, r, load) ->
      Printf.printf
        "\nthreshold-pair vs h-triang crossover: read fraction %.2f (r = %d \
         of %d, load %.4f < %.4f)\n"
        fr r n load baseline_load
  | None ->
      Printf.printf
        "\nno resilient threshold pair beats h-triang's load %.4f on the \
         [0,1] grid\n"
        baseline_load);
  let oc = open_out (Util.out_path "BENCH_optimizer.json") in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"workload optimizer\",\n\
    \  \"n\": %d,\n\
    \  \"p\": %g,\n\
    \  \"f\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"trials\": %d,\n\
    \  \"fast\": %b,\n\
    \  \"topology\": \"ring(radius=1)\",\n\
    \  \"sweeps\": [\n%s\n  ],\n\
    \  \"crossover\": %s\n\
     }\n"
    n p f seed trials !Util.fast
    (String.concat ",\n" (List.map (fun (fr, r) -> sweep_json fr r) sweeps))
    (match cross with
    | Some (fr, r, load) ->
        Printf.sprintf
          "{\"baseline\": \"htriang(15)\", \"baseline_load\": %.6f, \
           \"read_fraction\": %.2f, \"threshold_r\": %d, \"pair_load\": %.6f}"
          baseline_load fr r load
    | None ->
        Printf.sprintf
          "{\"baseline\": \"htriang(15)\", \"baseline_load\": %.6f, \
           \"read_fraction\": null}"
          baseline_load);
  close_out oc;
  Printf.printf "  wrote BENCH_optimizer.json\n"
