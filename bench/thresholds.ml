(* Critical crash probabilities (extension): the paper inherits Kumar &
   Cheung's "availability tends to 1 for all p < p* < 1/2" without ever
   computing p*.  We measure p* for every growing family by bisection
   on "does the failure probability still fall between the two largest
   instances". *)

let run () =
  Util.print_header
    "Critical thresholds (extension): measured p* per growing family";
  Printf.printf
    "  (availability tends to 1 below p*, to 0 above; 0.5 is the\n\
    \   theoretical optimum, attained by majority and HQS)\n";
  let entry label family levels =
    if not (Analysis.Threshold.improves ~family ~levels 0.01) then
      Printf.printf "  %-34s p* < 0.01 (degrades with size)\n" label
    else begin
      let p_star = Analysis.Threshold.critical_p ~family ~levels () in
      Printf.printf "  %-34s p* = %.4f\n" label p_star
    end
  in
  entry "majority (n = 2 level + 1)"
    (fun level ~p ->
      Systems.Majority.failure_probability ~n:((2 * level) + 1) ~p)
    (60, 120);
  entry "HQS (3^level leaves)"
    (fun level ~p ->
      Systems.Hqs.failure_probability
        ~branching:(List.init level (fun _ -> 3))
        ~p)
    (6, 12);
  entry "h-grid (2x2 ^ level)"
    (fun level ~p ->
      Core.Hgrid.failure_probability
        (Core.Hgrid.of_dims (List.init level (fun _ -> (2, 2))))
        Core.Hgrid.Read_write ~p)
    (5, 10);
  entry "h-grid (3x3 ^ level)"
    (fun level ~p ->
      Core.Hgrid.failure_probability
        (Core.Hgrid.of_dims (List.init level (fun _ -> (3, 3))))
        Core.Hgrid.Read_write ~p)
    (3, 6);
  entry "h-triang (d = 6 level)"
    (fun level ~p ->
      Core.Htriang.failure_probability
        (Core.Htriang.standard ~rows:(6 * level) ())
        ~p)
    (4, 8);
  entry "CWlog (n = 30 level)"
    (fun level ~p -> Systems.Cwlog.failure_probability ~n:(30 * level) ~p)
    (8, 16);
  entry "flat triangle wall (d = 6 level)"
    (fun level ~p ->
      Systems.Triangle.failure_probability ~rows:(6 * level) ~p)
    (4, 8);
  entry "flat grid RW (k x k, k = 4 level)"
    (fun level ~p ->
      Systems.Grid.failure_probability ~rows:(4 * level) ~cols:(4 * level)
        Systems.Grid.Read_write ~p)
    (4, 8);
  entry "tree quorum (height = level)"
    (fun level ~p -> Systems.Tree_quorum.failure_probability ~height:level ~p)
    (8, 16);
  Printf.printf
    "\n  Majority/HQS reach the optimal 1/2 (the majority level map's\n\
    \   unstable fixed point); the h-grid's p* really is strictly below\n\
    \   1/2 and shrinks with the sub-grid dimension, exactly as Kumar &\n\
    \   Cheung assert without computing it.  Notably, h-triang's\n\
    \   effective decay threshold at these sizes (~0.20) is LOWER than\n\
    \   the h-grid's: between d = 24 and d = 48 its failure probability\n\
    \   at p = 0.3 plateaus near 3%% instead of vanishing, so the\n\
    \   paper's sketched asymptotic-availability claim holds only for\n\
    \   moderate p.  Values are effective thresholds at the probed\n\
    \   sizes; flat families additionally have genuine non-zero floors\n\
    \   (F > p^(1/p), the [15] critique) below which they never drop.\n"
