(* Reproduction harness: regenerates every table and figure of the
   paper, the in-text section 4.3 / section 6 numbers, the ablations,
   the simulated-protocol comparison and the bechamel micro-benchmarks.

   Usage: main.exe [--fast] [--metrics] [--jobs N] [--gate FILE] [target ...]
   Targets: table1 table2 table3 table4 table5 figure1 figure2 curves
            sect43 sect6 ablations sims chaos churn fd latency placement
            byzantine thresholds perf parallel optimizer throughput engine
            all (default: all)

   --fast replaces the 2^25..2^28 exact enumerations (h-T-grid(25),
   Paths(24), Y(28)) with 1e6-trial Monte Carlo estimates.
   --metrics makes the chaos target dump the full per-scenario metrics
   registry (rpc, failure-detector and protocol instruments) after each
   report row.
   --jobs N runs the analysis hot paths on an N-domain pool; results
   are identical for any N (the parallel target reports the speedups
   and writes BENCH_parallel.json).
   --gate FILE makes the engine target compare its measurements against
   the committed baseline (bench/BENCH_engine.baseline.json) and fail
   on regression: events/sec (calibration-normalized) down more than
   15% or minor words/event up more than 10%. *)

let targets : (string * (unit -> unit)) list =
  [
    ("table1", Tables.table1);
    ("table2", Tables.table2);
    ("table3", Tables.table3);
    ("table4", Tables.table4);
    ("table5", Tables.table5);
    ("figure1", Figures.figure1);
    ("figure2", Figures.figure2);
    ("curves", Figures.availability_curves);
    ("sect43", Tables.sect43);
    ("sect6", Tables.sect6);
    ( "ablations",
      fun () ->
        Ablations.shapes ();
        Ablations.growth ();
        Ablations.heterogeneous ();
        Ablations.refinement () );
    ("sims", Sims.run);
    ("chaos", Chaos.run);
    ("churn", Churn.run);
    ("fd", Fd.run);
    ("latency", Latency.run);
    ("placement", Placement.run);
    ("byzantine", Byz.run);
    ("thresholds", Thresholds.run);
    ("perf", Perf.run);
    ("parallel", Parallel.run);
    ("optimizer", Optimizer.run);
    ("throughput", Throughput.run);
    ("engine", Engine_bench.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse_flags acc = function
    | [] -> List.rev acc
    | "--fast" :: rest ->
        Util.fast := true;
        parse_flags acc rest
    | "--metrics" :: rest ->
        Util.metrics := true;
        parse_flags acc rest
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            Util.jobs := n;
            parse_flags acc rest
        | _ ->
            Printf.eprintf "error: --jobs expects a positive integer\n";
            exit 1)
    | "--jobs" :: [] ->
        Printf.eprintf "error: --jobs expects a positive integer\n";
        exit 1
    | "--gate" :: path :: rest ->
        Util.gate := Some path;
        parse_flags acc rest
    | "--gate" :: [] ->
        Printf.eprintf "error: --gate expects a baseline JSON path\n";
        exit 1
    | a :: rest -> parse_flags (a :: acc) rest
  in
  let args = parse_flags [] args in
  let selected =
    match args with [] | [ "all" ] -> List.map fst targets | l -> l
  in
  Printf.printf
    "Revisiting Hierarchical Quorum Systems (ICDCS 2001) - reproduction \
     harness%s\n"
    (if !Util.fast then " [--fast: Monte Carlo for 2^25+ enumerations]"
     else "");
  List.iter
    (fun name ->
      match List.assoc_opt name targets with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown target %s (known: %s)\n" name
            (String.concat " " (List.map fst targets));
          exit 1)
    selected;
  match !Util.the_pool with
  | Some p -> Exec.Pool.shutdown p
  | None -> ()
