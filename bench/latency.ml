(* Latency breakdown benchmark: one fully-traced pinned-seed chaos run
   per protocol, profiled with Obs.Trace_analysis, written to
   BENCH_latency.json.

   Each profiled operation's critical-path breakdown (network, fsync,
   queueing, retransmit) partitions its end-to-end latency exactly, so
   the per-class component sums in the JSON add up to the summed
   latency — a consumer can recompute and check.  Seeds match bench
   chaos (mutex 41, store 42, reconfig 43): a JSON row names the exact
   run that produced it. *)

module R = Protocols.Run_report
module Ta = Obs.Trace_analysis

let horizon () = if !Util.fast then 150.0 else 400.0

(* Scenarios chosen so every breakdown component is exercised: baseline
   (pure network), loss+burst (retransmit), restart (fsync > 0 plus
   crash windows). *)
let scenarios = [ "baseline"; "loss+burst"; "restart" ]

let breakdown_json (b : Ta.breakdown) =
  Printf.sprintf
    "{\"network\": %.6f, \"fsync\": %.6f, \"queueing\": %.6f, \
     \"retransmit\": %.6f}"
    b.Ta.network b.Ta.fsync b.Ta.queueing b.Ta.retransmit

let op_json name (ps : Ta.op_profile list) =
  let a = Ta.aggregate ps in
  let latency_sum =
    List.fold_left (fun acc (p : Ta.op_profile) -> acc +. p.Ta.latency) 0.0 ps
  in
  Printf.sprintf
    "{\"op\": %S, \"count\": %d, \"complete\": %d, \"mean\": %.6f, \
     \"p50\": %.6f, \"p90\": %.6f, \"p99\": %.6f, \"max\": %.6f, \
     \"latency_sum\": %.6f, \"breakdown_sum\": %s}"
    name a.Ta.count a.Ta.complete a.Ta.mean a.Ta.p50 a.Ta.p90 a.Ta.p99
    a.Ta.max_v latency_sum
    (breakdown_json a.Ta.total)

let run_one ~protocol ~system ~next ~scenario =
  let r =
    R.run ~horizon:(horizon ()) ?next ~protocol ~system ~scenario ()
  in
  let ops =
    List.map (fun (name, ps) -> op_json name ps) (Ta.by_name r.R.profiles)
  in
  let audit =
    match r.R.audit with
    | None -> "null"
    | Some a -> Printf.sprintf "%S" (Ta.verdict a)
  in
  Printf.sprintf
    "{\"protocol\": %S, \"system\": %S, \"scenario\": %S, \"seed\": %d, \
     \"audit\": %s, \"ops\": [%s]}"
    (R.protocol_name protocol)
    r.R.system r.R.scenario r.R.seed audit (String.concat ", " ops)

let run () =
  Util.print_header "latency: critical-path breakdowns from traced runs";
  let grid =
    [
      (R.Mutex, "majority(15)", None);
      (R.Store, "htgrid(4x4)", None);
      (R.Reconfig, "htriang(15)", Some "htriang(15)");
    ]
  in
  let rows =
    List.concat_map
      (fun (protocol, spec, next_spec) ->
        let system = Util.system spec in
        let next = Option.map Util.system next_spec in
        List.map
          (fun scenario ->
            let row = run_one ~protocol ~system ~next ~scenario in
            Printf.printf "  %-8s %-14s %-11s done\n"
              (R.protocol_name protocol) spec scenario;
            row)
          scenarios)
      grid
  in
  let oc = open_out (Util.out_path "BENCH_latency.json") in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"latency\",\n\
    \  \"fast\": %b,\n\
    \  \"horizon\": %g,\n\
    \  \"runs\": [\n%s\n  ]\n\
     }\n"
    !Util.fast (horizon ())
    (String.concat ",\n" (List.map (fun r -> "    " ^ r) rows));
  close_out oc;
  Printf.printf "\n  wrote BENCH_latency.json (%d runs)\n" (List.length rows)
