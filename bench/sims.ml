(* End-to-end simulated-protocol comparison: run the quorum mutual
   exclusion and replicated store over the paper's ~15-node lineup and
   report operational metrics (latency, messages, availability under
   faults).  This is the "deployment view" of Tables 2/4: smaller
   quorums mean fewer messages; better availability means fewer refused
   operations under the same fault process. *)

module Engine = Sim.Engine
module Rng = Quorum.Rng

let mutex_comparison () =
  Util.print_header
    "Simulation: mutual exclusion, 40 requests, ~15 nodes, no faults";
  Printf.printf "  %-16s %-8s %-10s %-12s %s\n" "system" "entries"
    "msgs/entry" "mean wait" "violations";
  List.iter
    (fun spec ->
      let system = Util.system spec in
      let mx = Protocols.Mutex.create ~system ~cs_duration:0.5 () in
      let engine =
        Engine.create ~seed:101 ~nodes:system.Quorum.System.n
          (Protocols.Mutex.handlers mx)
      in
      Protocols.Mutex.bind mx engine;
      Protocols.Workload.staggered_requests engine ~every:0.3 ~count:40
        (fun ~client -> Protocols.Mutex.request mx ~node:client);
      Engine.run engine;
      let entries = Protocols.Mutex.entries mx in
      Printf.printf "  %-16s %-8d %-10.1f %-12.2f %d\n" spec entries
        (float_of_int (Engine.messages_sent engine)
        /. float_of_int (max 1 entries))
        (Obs.Metrics.mean (Protocols.Mutex.acquire_latency mx))
        (Protocols.Mutex.violations mx))
    [
      "majority(15)"; "hqs(5-3)"; "cwlog(14)"; "htgrid(4x4)"; "y(15)";
      "htriang(15)";
    ]

let store_comparison () =
  Util.print_header
    "Simulation: replicated store under iid transient faults (p = 0.15)";
  Printf.printf
    "  (predicted = 1 - F(0.15), the static model: a quorum is fully\n\
    \   live at the instant of selection.  The measured ratio is far\n\
    \   lower because an operation must also keep its selected quorum\n\
    \   and its client alive for the op's full duration - with ~100\n\
    \   time units between per-node crashes and ~3-unit operations over\n\
    \   5-9 members, roughly a quarter of operations lose a member\n\
    \   mid-flight.  Static availability is necessary, not sufficient;\n\
    \   the ranking across systems still follows quorum size.)\n";
  Printf.printf "  %-16s %-10s %-14s %-11s %s\n" "system" "ok ratio"
    "ok (retry=3)" "predicted" "stale";
  let run_store spec retries =
    let system = Util.system spec in
    let store =
      Protocols.Replicated_store.create ~retries ~read_system:system
        ~write_system:system ~timeout:30.0 ()
    in
    let engine =
      Engine.create ~seed:77 ~nodes:system.Quorum.System.n
        (Protocols.Replicated_store.handlers store)
    in
    Protocols.Replicated_store.bind store engine;
    Sim.Failure_injector.iid_faults engine ~rng:(Rng.create 13) ~p:0.15
      ~mean_downtime:15.0 ~horizon:600.0;
    let workload =
      Util.ok_or_die (Analysis.Workload.make ~read_fraction:0.6 ())
    in
    let issued =
      Util.ok_or_die
        (Protocols.Workload.read_write_mix_w engine ~rng:(Rng.create 14)
           ~rate:1.0 ~horizon:600.0 ~workload ~keys:4
           ~read:(fun ~client ~key ->
             Protocols.Replicated_store.read store ~client ~key)
           ~write:(fun ~client ~key ~value ->
             Protocols.Replicated_store.write store ~client ~key ~value))
    in
    Engine.run engine;
    let ok =
      Protocols.Replicated_store.reads_ok store
      + Protocols.Replicated_store.writes_ok store
    in
    (float_of_int ok /. float_of_int (max 1 issued),
     Protocols.Replicated_store.stale_reads store)
  in
  List.iter
    (fun spec ->
      let system = Util.system spec in
      let ratio0, stale0 = run_store spec 0 in
      let ratio3, stale3 = run_store spec 3 in
      let predicted =
        1.0 -. Analysis.Failure.failure_probability system ~p:0.15
      in
      Printf.printf "  %-16s %-10.3f %-14.3f %-11.3f %d\n" spec ratio0 ratio3
        predicted (stale0 + stale3))
    [ "majority(15)"; "cwlog(14)"; "htgrid(4x4)"; "htriang(15)" ];
  Printf.printf
    "(h-grid read/write split for the replicated-data setting of 4.1:)\n";
  let read_system = Util.system "hgrid-read(4x4)" in
  let write_system = Util.system "hgrid-write(4x4)" in
  let store =
    Protocols.Replicated_store.create ~read_system ~write_system ~timeout:30.0 ()
  in
  let engine =
    Engine.create ~seed:78 ~nodes:16 (Protocols.Replicated_store.handlers store)
  in
  Protocols.Replicated_store.bind store engine;
  let workload =
    Util.ok_or_die (Analysis.Workload.make ~read_fraction:0.8 ())
  in
  let issued =
    Util.ok_or_die
      (Protocols.Workload.read_write_mix_w engine ~rng:(Rng.create 15)
         ~rate:1.0 ~horizon:300.0 ~workload ~keys:4
         ~read:(fun ~client ~key ->
           Protocols.Replicated_store.read store ~client ~key)
         ~write:(fun ~client ~key ~value ->
           Protocols.Replicated_store.write store ~client ~key ~value))
  in
  Engine.run engine;
  Printf.printf
    "  hgrid r/w split: %d/%d ops ok, %d stale reads\n"
    (Protocols.Replicated_store.reads_ok store
    + Protocols.Replicated_store.writes_ok store)
    issued
    (Protocols.Replicated_store.stale_reads store)

let run () =
  mutex_comparison ();
  store_comparison ()
