(* Parallel-analysis benchmark: run each analysis hot path
   sequentially (no pool) and on pools of 1, 2 and 4 domains, check
   that every pooled result is identical whatever the domain count,
   report the wall-clock speedups, and write the measurements to
   BENCH_parallel.json.

   The workloads are the drivers the tentpole parallelised:
     - exact_poly: the 2^n live-set scan (Proposition 3.1);
     - monte_carlo: availability sampling with split RNG streams;
     - empirical:   strategy-load sampling on h-triang(105) (quorums
                    are never enumerated — selection is structural);
     - chaos:       the full mutex scenario grid, one run per task.

   Speedups only materialise with multiple cores; the JSON records
   [cores] so a 1-core container's ~1.0x is read for what it is. *)

module Failure = Analysis.Failure
module Strategy = Quorum.Strategy
module Rng = Quorum.Rng
module Pool = Exec.Pool
module C = Protocols.Chaos

let jobs_list = [ 1; 2; 4 ]

type case = {
  label : string;
  seq_s : float;  (* no pool: the legacy sequential code path *)
  pooled_s : (int * float) list;  (* jobs -> wall-clock seconds *)
  agree : bool;  (* pooled results identical across jobs_list *)
}

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Run [work] without a pool, then under each jobs count; [key] maps a
   result to a comparable summary (pooled runs must agree exactly). *)
let measure ~metrics ~label ~same_as_seq work key =
  let seq_r, seq_s = time (fun () -> work None) in
  let pooled =
    List.map
      (fun jobs ->
        Pool.with_pool ~name:(Printf.sprintf "j%d" jobs) ~metrics ~jobs
          (fun pool ->
            let r, s = time (fun () -> work (Some pool)) in
            (jobs, r, s)))
      jobs_list
  in
  let keys = List.map (fun (_, r, _) -> key r) pooled in
  let agree =
    match keys with
    | [] -> true
    | k0 :: rest ->
        List.for_all (( = ) k0) rest
        && ((not same_as_seq) || k0 = key seq_r)
  in
  {
    label;
    seq_s;
    pooled_s = List.map (fun (jobs, _, s) -> (jobs, s)) pooled;
    agree;
  }

let exact_poly_case ~metrics =
  let spec = if !Util.fast then "grid-rw(4x4)" else "grid-rw(4x6)" in
  let s = Util.system spec in
  measure ~metrics
    ~label:(Printf.sprintf "exact_poly %s (2^%d)" spec s.Quorum.System.n)
    ~same_as_seq:true
    (fun pool -> Failure.exact_poly ?pool s)
    (fun poly ->
      List.init (s.Quorum.System.n + 1) (Quorum.Failure_poly.fail_count poly))

let monte_carlo_case ~metrics =
  let s = Util.system "htriang(28)" in
  let trials = if !Util.fast then 100_000 else 1_000_000 in
  measure ~metrics
    ~label:(Printf.sprintf "monte_carlo htriang(28) (%d trials)" trials)
    ~same_as_seq:false (* pooled sampling uses split streams *)
    (fun pool ->
      Failure.monte_carlo ?pool ~trials (Rng.create 7) s ~p:0.2)
    (fun (est : Failure.estimate) -> [ est.mean; est.half_width ])

let empirical_case ~metrics =
  let s = Util.system "htriang(105)" in
  let trials = if !Util.fast then 20_000 else 100_000 in
  measure ~metrics
    ~label:(Printf.sprintf "empirical htriang(105) (%d trials)" trials)
    ~same_as_seq:false
    (fun pool ->
      Strategy.empirical_of_select ?pool ~n:s.Quorum.System.n ~trials
        (Rng.create 9) s.Quorum.System.select)
    (fun (e : Strategy.empirical) ->
      (Array.to_list e.loads, e.max_load, e.avg_size, e.misses))

let chaos_case ~metrics =
  let horizon = if !Util.fast then 100.0 else 400.0 in
  let specs = [ "majority(15)"; "hgrid(4x4)"; "htgrid(4x4)"; "htriang(15)" ] in
  let tasks =
    List.concat_map
      (fun spec ->
        let n = (Util.system spec).Quorum.System.n in
        List.map
          (fun scenario () ->
            let system = Util.system spec in
            C.mutex_row (C.run_mutex ~seed:41 ~system scenario))
          (C.standard ~n ~horizon))
      specs
    |> Array.of_list
  in
  measure ~metrics
    ~label:
      (Printf.sprintf "chaos mutex sweep (%d runs)" (Array.length tasks))
    ~same_as_seq:true
    (fun pool ->
      match pool with
      | None -> Array.map (fun task -> task ()) tasks
      | Some pool -> Pool.map_array pool (fun task -> task ()) tasks)
    Array.to_list

(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let case_json c =
  let pooled =
    List.map
      (fun (jobs, s) ->
        Printf.sprintf
          "{\"jobs\": %d, \"seconds\": %.6f, \"speedup\": %.3f}" jobs s
          (c.seq_s /. s))
      c.pooled_s
  in
  Printf.sprintf
    "    {\"case\": \"%s\", \"sequential_seconds\": %.6f, \"agree\": %b, \
     \"pooled\": [%s]}"
    (json_escape c.label) c.seq_s c.agree
    (String.concat ", " pooled)

let write_json ~cores cases =
  let oc = open_out (Util.out_path "BENCH_parallel.json") in
  Printf.fprintf oc
    "{\n  \"bench\": \"parallel analysis engine\",\n  \"cores\": %d,\n  \
     \"fast\": %b,\n  \"cases\": [\n%s\n  ]\n}\n"
    cores !Util.fast
    (String.concat ",\n" (List.map case_json cases));
  close_out oc

let run () =
  Util.print_header
    "Parallel analysis engine: sequential vs pooled (jobs = 1, 2, 4)";
  let cores = Pool.default_jobs () in
  Printf.printf
    "  (%d core%s recommended by the runtime; speedup needs > 1)\n" cores
    (if cores = 1 then "" else "s");
  let metrics = Obs.Metrics.create () in
  let cases =
    [
      exact_poly_case ~metrics;
      monte_carlo_case ~metrics;
      empirical_case ~metrics;
      chaos_case ~metrics;
    ]
  in
  Printf.printf "  %-38s %-10s %s\n" "case" "seq (s)"
    "pooled s (speedup) for jobs=1,2,4";
  List.iter
    (fun c ->
      let pooled =
        String.concat "  "
          (List.map
             (fun (jobs, s) ->
               Printf.sprintf "j%d %.3f (%.2fx)" jobs s (c.seq_s /. s))
             c.pooled_s)
      in
      Printf.printf "  %-38s %-10.3f %s%s\n" c.label c.seq_s pooled
        (if c.agree then "" else "  RESULTS DISAGREE");
      if not c.agree then exit 1)
    cases;
  write_json ~cores cases;
  Printf.printf "  wrote BENCH_parallel.json\n";
  Printf.printf "\n  pool instruments (exec.*):\n%s"
    (Obs.Metrics.render metrics)
