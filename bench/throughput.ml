(* Store throughput: sessioned/pipelined/batched clients against flat
   majority, h-triang and sharded h-grid systems, swept over n.

   Three sections feed BENCH_throughput.json:

   - closed-loop capacity sweep: n in {3..25}, one session per node
     keeping a pipeline window full.  With per-request service cost, a
     flat majority puts ~n/2 nodes in every quorum so its capacity
     stays flat; h-triang touches ~sqrt(2n) nodes; the sharded h-grid
     splits disjoint keys across disjoint subquorums.  The headline:
     the sharded hierarchical arm overtakes flat majority at n >= 9
     and the gap widens with n (the bench aborts if it ever does not).
   - open-loop overload: Poisson arrivals past capacity; queue growth
     and shedding show where each arm saturates.
   - batch ablation: same load, batch sizes 1/4/16 — one fsync per
     batch is what amortizes a non-zero fsync latency.

   The n=15 closed-loop runs carry a span collector, so each of those
   rows also reports the critical-path breakdown (network / fsync /
   queueing / retransmit) from Obs.Trace_analysis.

   The seed (46) is pinned and echoed into BENCH_throughput.json;
   repeated runs are bit-identical. *)

module C = Protocols.Chaos
module T = Protocols.Throughput

let seed = 46
let horizon () = if !Util.fast then 80.0 else 200.0
let ns () = if !Util.fast then [ 3; 9; 15 ] else [ 3; 5; 7; 9; 12; 15; 20; 25 ]
let breakdown_n = 15
let window = 6
let batch = 4
let batch_delay = 0.25
let fsync = 0.2
let open_n = 15
let open_rate = 12.0
let open_queue = 64
let ablation_sizes = [ 1; 4; 16 ]

let scenario ~label = { C.label; horizon = horizon (); plan = { C.calm with fsync } }

let json (r : T.report) =
  Printf.sprintf
    "{\"scenario\": %S, \"system\": %S, \"mode\": %S, \"seed\": %d, \"n\": \
     %d, \"shards\": %d, \"window\": %d, \"batch\": %d, \"offered\": %g, \
     \"issued\": %d, \"completed\": %d, \"failed\": %d, \"shed\": %d, \
     \"ops_per_sec\": %.4f, \"mean_latency\": %.4f, \"p95_latency\": %.4f, \
     \"peak_backlog\": %d, \"final_backlog\": %d, \"batches\": %d, \
     \"batched_ops\": %d, \"retransmissions\": %d, \"stale_reads\": %d, \
     \"breakdown\": {\"network\": %.3f, \"fsync\": %.3f, \"queueing\": \
     %.3f, \"retransmit\": %.3f}, \"budget_hit\": %b}"
    r.T.label r.T.system r.T.mode r.T.seed r.T.n r.T.shards r.T.window
    r.T.batch r.T.offered r.T.issued r.T.completed r.T.failed r.T.shed
    r.T.ops_per_sec r.T.mean_latency r.T.p95_latency r.T.peak_backlog
    r.T.final_backlog r.T.batches r.T.batched_ops r.T.retransmissions
    r.T.stale_reads r.T.breakdown.Obs.Trace_analysis.network
    r.T.breakdown.Obs.Trace_analysis.fsync
    r.T.breakdown.Obs.Trace_analysis.queueing
    r.T.breakdown.Obs.Trace_analysis.retransmit r.T.budget_hit

(* Regular-register semantics is not negotiable at any throughput:
   this bench runs in CI. *)
let check (r : T.report) =
  if r.T.stale_reads > 0 then
    failwith
      (Printf.sprintf "throughput bench: %d stale reads at %s n=%d"
         r.T.stale_reads r.T.system r.T.n);
  r

let write_json sections =
  let oc = open_out (Util.out_path "BENCH_throughput.json") in
  let section (name, rows) =
    Printf.sprintf "  \"%s\": [\n%s\n  ]" name
      (String.concat ",\n" (List.map (fun j -> "    " ^ j) rows))
  in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"throughput\",\n\
    \  \"fast\": %b,\n\
    \  \"seed\": %d,\n\
    \  \"horizon\": %g,\n\
    \  \"window\": %d,\n\
    \  \"batch\": %d,\n\
    \  \"fsync\": %g,\n\
     %s\n\
     }\n"
    !Util.fast seed (horizon ()) window batch fsync
    (String.concat ",\n" (List.map section sections));
  close_out oc

let run () =
  Printf.printf "\n== throughput: sessioned store, flat vs hierarchical ==\n";
  Printf.printf
    "(window %d, batch %d, service per_req 0.3 per_batch 0.1, fsync %g)\n"
    window batch fsync;

  (* --- closed-loop capacity sweep --------------------------------- *)
  Printf.printf "\nclosed-loop capacity sweep:\n%s\n" (T.header ());
  let sweep =
    List.concat_map
      (fun n ->
        let arms = Util.ok_or_die (T.arms ~n ()) in
        List.map
          (fun arm ->
            let obs = if n = breakdown_n then Some (Obs.create ()) else None in
            let r =
              check
                (T.run_arm ~seed ~window ~batch_size:batch ~batch_delay ?obs
                   arm
                   (scenario ~label:"closed"))
            in
            Printf.printf "%s\n" (T.row r);
            r)
          arms)
      (ns ())
  in
  (* The acceptance bar: sharded hierarchical beats flat majority at
     every n >= 9 in the closed-loop sweep. *)
  List.iter
    (fun n ->
      if n >= 9 then
        let ops sys_prefix =
          match
            List.find_opt
              (fun (r : T.report) ->
                r.T.n = n
                && String.length r.T.system >= String.length sys_prefix
                && String.sub r.T.system 0 (String.length sys_prefix)
                   = sys_prefix)
              sweep
          with
          | Some r -> r.T.ops_per_sec
          | None -> 0.0
        in
        let flat = ops "flat-majority" and sharded = ops "shard-hgrid" in
        if sharded <= flat then
          failwith
            (Printf.sprintf
               "throughput bench: no crossover at n=%d (flat %.2f >= sharded \
                %.2f ops/s)"
               n flat sharded))
    (ns ());

  (* --- open-loop overload ------------------------------------------ *)
  let n = open_n in
  Printf.printf
    "\nopen-loop overload (n=%d, offered %.1f ops/s, max_queue %d):\n%s\n" n
    open_rate open_queue (T.header ());
  let overload =
    List.map
      (fun arm ->
        let r =
          check
            (T.run_arm ~seed ~mode:(T.Open open_rate) ~window
               ~batch_size:batch ~batch_delay ~max_queue:open_queue arm
               (scenario ~label:"open"))
        in
        Printf.printf "%s\n" (T.row r);
        r)
      (Util.ok_or_die (T.arms ~n ()))
  in

  (* --- batch ablation ---------------------------------------------- *)
  Printf.printf "\nbatch ablation (h-triang, n=%d, closed loop):\n%s\n" n
    (T.header ());
  let ablation =
    List.map
      (fun size ->
        let r =
          check
            (T.run_arm ~seed ~window ~batch_size:size ~batch_delay
               (T.htriang_arm ~n)
               (scenario ~label:Printf.(sprintf "batch=%d" size)))
        in
        Printf.printf "%s\n" (T.row r);
        r)
      ablation_sizes
  in

  (* Critical-path summary of the instrumented rows. *)
  (match
     List.filter (fun (r : T.report) -> r.T.n = breakdown_n) sweep
   with
  | [] -> ()
  | instrumented ->
      Printf.printf "\ncritical path at n=%d (time in component, closed loop):\n"
        breakdown_n;
      List.iter
        (fun (r : T.report) ->
          let b = r.T.breakdown in
          Printf.printf
            "  %-15s network %8.1f  fsync %8.1f  queueing %8.1f  retransmit \
             %8.1f\n"
            r.T.system b.Obs.Trace_analysis.network
            b.Obs.Trace_analysis.fsync b.Obs.Trace_analysis.queueing
            b.Obs.Trace_analysis.retransmit)
        instrumented);

  write_json
    [
      ("closed_loop", List.map json sweep);
      ("open_loop", List.map json overload);
      ("batch_ablation", List.map json ablation);
    ];
  Printf.printf "\n  wrote BENCH_throughput.json (seed %d)\n" seed
