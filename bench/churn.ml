(* Availability under sustained churn: the dynamic-membership register
   (Protocols.Membership over Reconfig) against the static baseline,
   swept over churn rates.

   Each row is one seeded run of a Poisson join/leave process over a
   fixed universe while live clients issue a read/write mix.  The
   [static] mode keeps the t=0 h-triang placement forever; [resize]
   runs the replace/grow/shrink controller; [timed] additionally runs
   the register in timed-quorum (lease) mode so epoch switches drain
   validity windows instead of sealing a structural old-system quorum;
   [fd] is [resize] with the controller blinded — its liveness opinion
   comes from the members' quorum-merged failure-detector views (with
   flap hysteresis) instead of the engine oracle, so the availability
   gap between [resize] and [fd] prices realistic failure detection.

   The headline of BENCH_churn.json: at the highest swept rate —
   enough sustained churn to keep ~23 of 30 processes down at once —
   the static configuration's availability collapses below 0.5 while
   the timed-quorum register stays above 0.9 (plain resize degrades
   gracefully in between), and stale_reads is 0 in every cell, so the
   availability is not bought with safety.  Reconfiguration downtime
   is the merged "reconfig.switch" span windows, extracted by
   Obs.Trace_analysis from each run's span collector.

   The seed (45) is pinned and echoed into BENCH_churn.json, so any
   row is replayed exactly. *)

module C = Protocols.Chaos

let seed = 45
let universe = 30
let rows = 5 (* h-triang(15): half the universe spare at t=0 *)
let mean_downtime = 130.0
let op_rate = 2.0
let op_timeout = 30.0
let period = 8.0
let lease = 3.0
let horizon () = if !Util.fast then 150.0 else 300.0

(* Swept churn rates (leave events per time unit): the expected number
   of simultaneously-down processes is rate * mean_downtime (capped by
   the universe), so the top rate keeps roughly three quarters of the
   population down once the churn has ramped up. *)
let rates () = if !Util.fast then [ 0.05; 0.18 ] else [ 0.05; 0.1; 0.18 ]

let modes = [ C.Static; C.Resize; C.Timed; C.Fd ]

let scenario ~rate =
  let h = horizon () in
  {
    C.label = Printf.sprintf "rate=%.2f" rate;
    horizon = h;
    plan = { C.calm with loss = 0.02; churn_sustained = Some (rate, mean_downtime) };
  }

let json ~rate (r : C.churn_report) =
  Printf.sprintf
    "{\"rate\": %g, \"mode\": %S, \"seed\": %d, \"issued\": %d, \"ok\": %d, \
     \"failed\": %d, \"availability\": %.4f, \"stale_reads\": %d, \
     \"epoch_switches\": %d, \"proposals\": %d, \"grows\": %d, \
     \"shrinks\": %d, \"replacements\": %d, \"lease_refusals\": %d, \
     \"false_evictions\": %d, \"switch_downtime\": %.2f, \
     \"final_members\": %d, \"budget_hit\": %b}"
    rate r.C.mode r.C.seed r.C.issued r.C.ok r.C.failed r.C.availability
    r.C.stale_reads r.C.epoch_switches r.C.proposals r.C.grows r.C.shrinks
    r.C.replacements r.C.lease_refusals r.C.false_evictions
    r.C.switch_downtime r.C.final_members r.C.budget_hit

let write_json rows_json =
  let oc = open_out (Util.out_path "BENCH_churn.json") in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"churn\",\n\
    \  \"fast\": %b,\n\
    \  \"horizon\": %g,\n\
    \  \"seed\": %d,\n\
    \  \"universe\": %d,\n\
    \  \"rows\": %d,\n\
    \  \"mean_downtime\": %g,\n\
    \  \"runs\": [\n%s\n  ]\n\
     }\n"
    !Util.fast (horizon ()) seed universe rows mean_downtime
    (String.concat ",\n" (List.map (fun j -> "    " ^ j) rows_json));
  close_out oc

let run () =
  Printf.printf
    "\n== churn: availability of static vs dynamic membership ==\n";
  Printf.printf
    "(universe %d, h-triang %d rows, mean downtime %g, op rate %g)\n" universe
    rows mean_downtime op_rate;
  Printf.printf "%s\n" (C.churn_header ());
  let tasks =
    List.concat_map
      (fun rate ->
        List.map
          (fun mode () ->
            let r =
              C.run_churn ~seed ~rate:op_rate ~op_timeout ~rows ~period ~lease
                ~mode ~universe (scenario ~rate)
            in
            (* Availability is never bought with safety: any stale read
               under churn is a bug, and CI runs this bench. *)
            if r.C.stale_reads > 0 then
              failwith
                (Printf.sprintf "churn bench: %d stale reads at %s/%s"
                   r.C.stale_reads r.C.label r.C.mode);
            (Printf.sprintf "%s\n" (C.churn_row r), json ~rate r))
          modes)
      (rates ())
  in
  let outputs =
    let tasks = Array.of_list tasks in
    match Util.pool () with
    | None -> Array.map (fun task -> task ()) tasks
    | Some pool -> Exec.Pool.map_array pool (fun task -> task ()) tasks
  in
  Array.iter (fun (display, _) -> print_string display) outputs;
  write_json (Array.to_list (Array.map snd outputs));
  Printf.printf "\n  wrote BENCH_churn.json (seed %d)\n" seed
