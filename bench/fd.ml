(* Failure detection: the detection-time vs false-positive tradeoff,
   failure-detector-driven vs omniscient membership availability under
   sustained churn, and hedging's tail-latency effect under gray
   failure.

   Three sub-benches, all into BENCH_fd.json:

   - [detector sweep]: the replicated store (clients route by detector
     view) under the fd stress scenarios, swept over fixed timeouts
     and phi-accrual thresholds.  The crash scenarios price detection
     latency and missed detections; the no-crash scenarios
     (asym-link, suspect-burst) make every suspicion false by
     construction, isolating the false-positive cost.  The headline:
     aggressive fixed timeouts detect fast but pay hundreds of false
     positives under loss bursts, while the accrual detector adapts
     its horizon to observed inter-arrival jitter and keeps both ends
     of the tradeoff.

   - [membership]: the dynamic-membership register under Poisson churn
     with the controller either omniscient (resize) or blinded to the
     members' quorum-merged detector views with flap hysteresis (fd).
     The availability gap is the measured price of realistic failure
     detection; stale_reads must be 0 in both arms.

   - [hedging]: the store under the gray scenario with hedging off vs
     on — duplicated stragglers cut the p99 while safety counters stay
     untouched.

   The seed (47) is pinned and echoed into BENCH_fd.json, so any row
   is replayed exactly. *)

module C = Protocols.Chaos

let seed = 47
let universe = 30
let mrows = 5
let mean_downtime = 130.0
let churn_rate = 0.1
let horizon () = if !Util.fast then 120.0 else 300.0
let spec = "htriang(15)"

type detector = Fixed of float | Accrual of float

let detectors () =
  if !Util.fast then [ Fixed 5.0; Accrual 2.0 ]
  else
    [ Fixed 2.0; Fixed 5.0; Fixed 8.0; Accrual 1.0; Accrual 2.0; Accrual 3.0 ]

let sweep_labels () =
  if !Util.fast then [ "churn-iid"; "suspect-burst" ]
  else [ "churn-iid"; "gray-flap"; "asym-link"; "suspect-burst" ]

let run_one ~det ~hedge scenario =
  let system = Util.system spec in
  let fd_timeout, accrual =
    match det with
    | Fixed tau -> (tau, None)
    | Accrual phi -> (5.0, Some phi)
  in
  let r =
    C.run_fd ~seed ~fd_timeout ?accrual ~hedge ~read_system:system
      ~write_system:system ~name:spec scenario
  in
  if r.C.stale_reads > 0 then
    failwith
      (Printf.sprintf "fd bench: %d stale reads at %s/%s" r.C.stale_reads
         r.C.label r.C.detector);
  r

let sweep_json ~scenario (r : C.fd_report) =
  Printf.sprintf
    "{\"scenario\": %S, \"detector\": %S, \"seed\": %d, \"issued\": %d, \
     \"ok\": %d, \"stale_reads\": %d, \"unavailable\": %d, \"hedges\": %d, \
     \"degraded_writes\": %d, \"detections\": %d, \"mean_detect\": %.2f, \
     \"max_detect\": %.2f, \"false_positives\": %d, \"missed\": %d, \
     \"transitions\": %d, \"p99_latency\": %.2f, \"budget_hit\": %b}"
    scenario r.C.detector r.C.seed r.C.issued r.C.ok r.C.stale_reads
    r.C.unavailable r.C.hedges r.C.degraded_writes r.C.detections
    r.C.mean_detect r.C.max_detect r.C.false_positives r.C.missed
    r.C.transitions r.C.p99_latency r.C.budget_hit

let churn_scenario () =
  let h = horizon () in
  {
    C.label = Printf.sprintf "rate=%.2f" churn_rate;
    horizon = h;
    plan =
      {
        C.calm with
        loss = 0.02;
        churn_sustained = Some (churn_rate, mean_downtime);
      };
  }

let membership_json (r : C.churn_report) =
  Printf.sprintf
    "{\"mode\": %S, \"seed\": %d, \"issued\": %d, \"ok\": %d, \
     \"availability\": %.4f, \"stale_reads\": %d, \"epoch_switches\": %d, \
     \"proposals\": %d, \"replacements\": %d, \"false_evictions\": %d, \
     \"switch_downtime\": %.2f, \"final_members\": %d, \"budget_hit\": %b}"
    r.C.mode r.C.seed r.C.issued r.C.ok r.C.availability r.C.stale_reads
    r.C.epoch_switches r.C.proposals r.C.replacements r.C.false_evictions
    r.C.switch_downtime r.C.final_members r.C.budget_hit

let hedge_json ~hedge (r : C.fd_report) =
  Printf.sprintf
    "{\"scenario\": %S, \"hedge\": %b, \"seed\": %d, \"ok\": %d, \
     \"hedges\": %d, \"stale_reads\": %d, \"p99_latency\": %.2f, \
     \"budget_hit\": %b}"
    r.C.label hedge r.C.seed r.C.ok r.C.hedges r.C.stale_reads
    r.C.p99_latency r.C.budget_hit

let write_json ~sweep ~membership ~hedging =
  let block rows =
    String.concat ",\n" (List.map (fun j -> "    " ^ j) rows)
  in
  let oc = open_out (Util.out_path "BENCH_fd.json") in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"fd\",\n\
    \  \"fast\": %b,\n\
    \  \"horizon\": %g,\n\
    \  \"seed\": %d,\n\
    \  \"detector_sweep\": [\n%s\n  ],\n\
    \  \"membership\": [\n%s\n  ],\n\
    \  \"hedging\": [\n%s\n  ]\n\
     }\n"
    !Util.fast (horizon ()) seed (block sweep) (block membership)
    (block hedging);
  close_out oc

let run () =
  let h = horizon () in
  let n = (Util.system spec).Quorum.System.n in
  Printf.printf "\n== fd: detection time vs accuracy (%s) ==\n" spec;
  Printf.printf "%s\n" (C.fd_header ());
  (* 1. Detector sweep over the fd stress scenarios. *)
  let sweep_tasks =
    List.concat_map
      (fun label ->
        let scenario = C.scenario_of_label ~n ~horizon:h label in
        List.map
          (fun det () ->
            let r = run_one ~det ~hedge:false scenario in
            (Printf.sprintf "%s\n" (C.fd_row r), sweep_json ~scenario:label r))
          (detectors ()))
      (sweep_labels ())
  in
  let sweep_out =
    let tasks = Array.of_list sweep_tasks in
    match Util.pool () with
    | None -> Array.map (fun task -> task ()) tasks
    | Some pool -> Exec.Pool.map_array pool (fun task -> task ()) tasks
  in
  Array.iter (fun (display, _) -> print_string display) sweep_out;
  (* 2. FD-driven vs omniscient membership under Poisson churn. *)
  Printf.printf
    "\n== fd: membership availability, omniscient vs detector-driven ==\n";
  Printf.printf "%s\n" (C.churn_header ());
  let membership =
    List.map
      (fun mode ->
        let r =
          C.run_churn ~seed ~rate:2.0 ~op_timeout:30.0 ~rows:mrows
            ~period:8.0 ~mode ~universe (churn_scenario ())
        in
        if r.C.stale_reads > 0 then
          failwith
            (Printf.sprintf "fd bench: %d stale reads in membership/%s"
               r.C.stale_reads r.C.mode);
        Printf.printf "%s\n" (C.churn_row r);
        membership_json r)
      [ C.Resize; C.Fd ]
  in
  (* 3. Hedging's p99 effect under gray failure. *)
  Printf.printf "\n== fd: hedged requests under gray failure ==\n";
  Printf.printf "%s\n" (C.fd_header ());
  let gray = C.scenario_of_label ~n ~horizon:h "gray" in
  let hedging =
    List.map
      (fun hedge ->
        let r = run_one ~det:(Fixed 5.0) ~hedge gray in
        Printf.printf "%s\n" (C.fd_row r);
        hedge_json ~hedge r)
      [ false; true ]
  in
  write_json
    ~sweep:(Array.to_list (Array.map snd sweep_out))
    ~membership ~hedging;
  Printf.printf "\n  wrote BENCH_fd.json (seed %d)\n" seed
