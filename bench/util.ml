(* Shared helpers for the reproduction harness: table rendering and
   paper-vs-measured cells. *)

let fast = ref false
(* --fast replaces the 2^28-scale exact enumerations with Monte-Carlo
   estimates (1e6 trials). *)

let metrics = ref false
(* --metrics makes the chaos target dump each run's full metrics
   registry (rpc retransmits, fd accuracy, latency histograms, ...)
   after its report row. *)

let jobs = ref 1
(* --jobs N runs the analysis hot paths (exact enumerations, Monte
   Carlo, chaos sweeps) on an N-domain pool.  Results are identical
   for any value; 1 keeps the sequential code paths. *)

let gate : string option ref = ref None
(* --gate FILE makes the engine target compare its measurements
   against a committed baseline JSON and exit non-zero on regression
   (events/sec normalized by an in-process calibration loop). *)

let the_pool : Exec.Pool.t option ref = ref None

(* The shared bench pool, created on first use once --jobs is known.
   [None] when --jobs <= 1 so callers fall back to sequential code. *)
let pool () =
  if !jobs <= 1 then None
  else
    match !the_pool with
    | Some _ as p -> p
    | None ->
        let p = Exec.Pool.create ~name:"bench" ~jobs:!jobs () in
        the_pool := Some p;
        Some p

(* Result-typed entry points with uniform error rendering: the bench
   never calls the raising Registry/System entry points. *)
let ok_or_die = function
  | Ok v -> v
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1

let system spec = ok_or_die (Core.Registry.build spec)

(* Benchmark artifacts (BENCH_*.json) belong at the repo root whatever
   directory the harness was launched from: walk up to the dune-project
   marker; fall back to the cwd when run outside the tree. *)
let out_path name =
  let rec find dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find parent
  in
  match find (Sys.getcwd ()) with
  | Some root -> Filename.concat root name
  | None -> name

let line width = String.make width '-'

let print_header title =
  Printf.printf "\n%s\n%s\n" title (line (String.length title))

(* A measured cell next to the paper's value.  "=" exact to the paper's
   six decimals, "~" within 15%, "!" a real deviation (discussed in
   EXPERIMENTS.md). *)
let cell ours paper =
  let marker =
    if abs_float (ours -. paper) < 5e-7 then "="
    else if paper <> 0.0 && abs_float (ours -. paper) /. paper < 0.15 then "~"
    else "!"
  in
  Printf.sprintf "%.6f (paper %.6f)%s" ours paper marker

let row label cells =
  Printf.printf "%-10s %s\n" label (String.concat "  " cells)

(* Exact failure probability, or Monte Carlo under --fast for large
   universes. *)
let failure_probability system ~p =
  if !fast && system.Quorum.System.n > 24 then
    (Analysis.Failure.monte_carlo ?pool:(pool ()) ~trials:1_000_000
       (Quorum.Rng.create 1) system ~p)
      .mean
  else Analysis.Failure.exact ?pool:(pool ()) system ~p

(* Evaluate several p values off one polynomial (one enumeration). *)
let failure_row system ps =
  if !fast && system.Quorum.System.n > 24 then
    List.map (fun p -> failure_probability system ~p) ps
  else begin
    let poly = Analysis.Failure.exact_poly ?pool:(pool ()) system in
    List.map (fun p -> Quorum.Failure_poly.eval poly ~p) ps
  end
