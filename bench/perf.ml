(* Bechamel micro-benchmarks: cost of availability checks and quorum
   selection per construction — the operations a deployed quorum-based
   service performs on every request. *)

open Bechamel
open Toolkit

let systems () =
  List.map Util.system
    [
      "majority(15)";
      "hqs(5-3)";
      "cwlog(14)";
      "htgrid(4x4)";
      "y(15)";
      "htriang(15)";
      "paths(2)";
      "htriang(105)";
      "hgrid(10x10)";
    ]

let avail_tests () =
  List.map
    (fun (s : Quorum.System.t) ->
      let live = Quorum.Bitset.universe s.n in
      (* flip some members dead so the check is not trivially the fast
         path *)
      let rng = Quorum.Rng.create 4 in
      for _ = 1 to s.n / 8 do
        Quorum.Bitset.remove live (Quorum.Rng.int rng s.n)
      done;
      Test.make ~name:("avail " ^ s.name) (Staged.stage (fun () -> s.avail live)))
    (systems ())

let select_tests () =
  List.map
    (fun (s : Quorum.System.t) ->
      let live = Quorum.Bitset.universe s.n in
      let rng = Quorum.Rng.create 5 in
      Test.make
        ~name:("select " ^ s.name)
        (Staged.stage (fun () -> s.select rng ~live)))
    (systems ())

let run_group name tests =
  let test = Test.make_grouped ~name ~fmt:"%s %s" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] -> Printf.printf "  %-32s %10.1f ns/op\n" name ns
      | Some _ | None -> Printf.printf "  %-32s (no estimate)\n" name)
    (List.sort compare rows)

let run () =
  Util.print_header "Micro-benchmarks (bechamel): per-request operation cost";
  run_group "avail" (avail_tests ());
  run_group "select" (select_tests ())
