(* Figures 1 and 2: structural renderings with example quorums, plus an
   availability-vs-p curve (the paper describes these analytically; the
   curve makes the asymptotic-availability claim visible). *)

open Core

let figure1 () =
  Util.print_header
    "Figure 1: 3-level hierarchical grid with 16 processes and a read-write quorum";
  let g = Hgrid.of_dims [ (2, 2); (2, 2) ] in
  let rng = Quorum.Rng.create 2 in
  let mem _ = true in
  let line = Option.get (Hgrid.select_full_line rng mem g.Hgrid.shape) in
  let cover = Option.get (Hgrid.select_row_cover rng mem g.Hgrid.shape) in
  let quorum = Quorum.Bitset.of_list 16 (line @ cover) in
  print_string (Hgrid.render ~quorum g);
  Printf.printf
    "(starred: a read-write quorum = full-line %s + row-cover %s)\n"
    (String.concat "," (List.map string_of_int (List.sort compare line)))
    (String.concat "," (List.map string_of_int (List.sort compare cover)))

let figure2 () =
  Util.print_header
    "Figure 2: triangle with 5 rows divided into T1 (plain), sub-grid [..] and T2 (..)";
  let t = Htriang.standard ~rows:5 () in
  print_string (Htriang.render t);
  let rng = Quorum.Rng.create 3 in
  let live = Quorum.Bitset.universe 15 in
  match Htriang.select t rng ~live with
  | Some q ->
      Printf.printf "example quorum (size %d): %s\n" (Quorum.Bitset.cardinal q)
        (String.concat ","
           (List.map string_of_int (Quorum.Bitset.to_list q)))
  | None -> ()

(* Availability curves: the asymptotic claim of sections 4/5 — adding
   levels drives failure probability to 0 for p below the threshold and
   to 1 above it. *)
let availability_curves () =
  Util.print_header
    "Availability scaling: F_p as the constructions grow (asymptotic claims)";
  Printf.printf "h-triang, F_0.1 and F_0.3 as d grows:\n";
  List.iter
    (fun rows ->
      let t = Htriang.standard ~rows () in
      Printf.printf "  d=%2d n=%4d  F(0.1)=%.2e  F(0.3)=%.2e  F(0.45)=%.3f\n"
        rows (rows * (rows + 1) / 2)
        (Htriang.failure_probability t ~p:0.1)
        (Htriang.failure_probability t ~p:0.3)
        (Htriang.failure_probability t ~p:0.45))
    [ 3; 5; 7; 10; 14; 20; 28; 40 ];
  Printf.printf "\nh-grid (read-write), F_0.1 as 2x2 levels stack:\n";
  List.iter
    (fun levels ->
      let dims = List.init levels (fun _ -> (2, 2)) in
      let g = Hgrid.of_dims dims in
      Printf.printf "  levels=%d n=%5d  F(0.1)=%.2e  F(0.3)=%.3f\n" levels
        g.Hgrid.n
        (Hgrid.failure_probability g Read_write ~p:0.1)
        (Hgrid.failure_probability g Read_write ~p:0.3))
    [ 1; 2; 3; 4; 5; 6 ];
  Printf.printf
    "\nflat grid for contrast (availability degrades with size, [15]):\n";
  List.iter
    (fun k ->
      Printf.printf "  %dx%d  F(0.1)=%.4f\n" k k
        (Systems.Grid.failure_probability ~rows:k ~cols:k
           Systems.Grid.Read_write ~p:0.1))
    [ 3; 5; 8; 12; 20 ]
