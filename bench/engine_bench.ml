(* Raw engine speed: events/sec and allocations/event for the
   Engine/Rpc/Durable hot path, per observability configuration, on a
   pinned seed (48).

   The workload is a self-contained rpc relay: every operation opens a
   root span, sends a payload around a ring of 15 nodes through the
   reliable-rpc layer (ack + retransmit timers, 2% network loss),
   appends each hop to the durable log, and finishes the span on the
   last hop; two crash/recover cycles exercise the recovery path.  The
   same pinned workload runs under four observability configurations:

     no-sink        metrics off, trace off, no spans opened
     metrics-only   metrics on, trace off, no spans
     full-trace     metrics + trace ring + every span kept
     sampled-trace  metrics + trace ring + spans sampled 1-in-8

   Because observability is behaviorally inert, all four configurations
   must dispatch exactly the same events — asserted below — so the
   numbers isolate what each layer costs, not what it changes.  A fifth
   run (full-trace + profiler) produces the per-category table; its
   time and allocation shares must sum to ~100% of the probed totals
   (also asserted).

   Everything lands in BENCH_engine.json.  With --gate FILE the rows
   are compared against a committed baseline: allocations/event is
   deterministic for a given compiler and gated at +10%; events/sec is
   machine-dependent, so the gate uses the ratio to an in-process
   calibration loop (events per calibration op) and allows -15%. *)

module Engine = Sim.Engine
module Rpc = Sim.Rpc
module Durable = Sim.Durable
module Network = Sim.Network

type wire = P of int Rpc.msg

let seed = 48
let n_nodes = 15
let hops = 8
let ops () = if !Util.fast then 600 else 4000

type cfg = {
  cname : string;
  trace_capacity : int;
  metrics_on : bool;
  use_spans : bool;
  keep_1_in : int option;
}

let configs =
  [
    { cname = "no-sink"; trace_capacity = 0; metrics_on = false;
      use_spans = false; keep_1_in = None };
    { cname = "metrics-only"; trace_capacity = 0; metrics_on = true;
      use_spans = false; keep_1_in = None };
    { cname = "full-trace"; trace_capacity = 1 lsl 18; metrics_on = true;
      use_spans = true; keep_1_in = None };
    { cname = "sampled-trace"; trace_capacity = 1 lsl 18; metrics_on = true;
      use_spans = true; keep_1_in = Some 8 };
  ]

(* One pinned run; returns the engine (for counters) and the measured
   wall seconds and minor words across scheduling + drain. *)
let run_once cfg ~profile =
  let obs =
    Obs.create ~trace_capacity:cfg.trace_capacity ~profile
      ?span_keep_1_in:cfg.keep_1_in ~span_sample_seed:seed ()
  in
  if not cfg.metrics_on then Obs.Metrics.set_enabled (Obs.metrics obs) false;
  let spans = Obs.spans obs in
  let use_spans = cfg.use_spans in
  let rpc = Rpc.create ~wrap:(fun m -> P m) () in
  let dur =
    Durable.create ~obs ~nodes:n_nodes (Durable.config ~fsync_latency:0.4 ())
  in
  let handlers =
    {
      Engine.on_message =
        (fun e ~node ~src (P m) ->
          Rpc.on_message rpc ~node ~src m ~deliver:(fun ~src:_ remaining ->
              let now = Engine.now e in
              ignore (Durable.append dur ~node ~now remaining);
              let ctx = Engine.span_ctx e in
              if use_spans && ctx <> -1 then begin
                let h =
                  Obs.Span.start spans ~time:now ~node ~parent:ctx "bench.hop"
                in
                Obs.Span.finish spans ~time:now h
              end;
              if remaining > 0 then
                Rpc.send rpc ~src:node
                  ~dst:((node + 3) mod n_nodes)
                  (remaining - 1)
              else if use_spans && ctx <> -1 then
                Obs.Span.finish spans ~time:now ctx));
      on_timer =
        (fun _e ~node ~tag -> ignore (Rpc.on_timer rpc ~node ~tag));
      on_crash =
        (fun e ~node ->
          Rpc.on_crash rpc ~node;
          Durable.crash dur ~node ~now:(Engine.now e));
      on_recover =
        (fun e ~node ~amnesia ->
          if amnesia then
            ignore (Durable.replay dur ~node ~now:(Engine.now e)));
    }
  in
  let network = Network.create ~loss:0.02 () in
  let e = Engine.create ~seed ~nodes:n_nodes ~network ~obs handlers in
  Rpc.bind rpc e;
  let n_ops = ops () in
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n_ops - 1 do
    let c = i mod n_nodes in
    let time = 1.0 +. (float_of_int i *. 0.35) in
    Engine.schedule e ~time (fun () ->
        let sp =
          if use_spans then
            Obs.Span.start spans ~time:(Engine.now e) ~node:c "bench.op"
          else -1
        in
        Engine.set_span_ctx e sp;
        Rpc.send rpc ~src:c ~dst:((c + 1) mod n_nodes) hops;
        Engine.set_span_ctx e (-1))
  done;
  Engine.crash_at e ~time:40.0 ~node:7;
  Engine.recover_at e ~time:70.0 ~node:7 ~amnesia:true;
  Engine.crash_at e ~time:120.0 ~node:3;
  Engine.recover_at e ~time:150.0 ~node:3;
  Engine.run e ~max_events:50_000_000;
  let dt = Unix.gettimeofday () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  (e, obs, dt, dw)

type measured = {
  m_cfg : cfg;
  events : int;
  sent : int;
  best_dt : float;
  words_per_event : float;
}

let measure cfg =
  let reps = if !Util.fast then 2 else 3 in
  let best_dt = ref infinity in
  let events = ref 0 in
  let sent = ref 0 in
  let words = ref 0.0 in
  for rep = 1 to reps do
    let e, _obs, dt, dw = run_once cfg ~profile:false in
    if dt < !best_dt then best_dt := dt;
    if rep = 1 then begin
      events := Engine.events_dispatched e;
      sent := Engine.messages_sent e;
      words := dw
    end
    else begin
      (* The workload is pinned: every rep must replay exactly, down to
         the allocation count. *)
      assert (Engine.events_dispatched e = !events);
      assert (Engine.messages_sent e = !sent);
      assert (dw = !words)
    end
  done;
  {
    m_cfg = cfg;
    events = !events;
    sent = !sent;
    best_dt = !best_dt;
    words_per_event = !words /. float_of_int (max 1 !events);
  }

(* Machine-speed yardstick: a fixed pure-OCaml mixing loop, so the
   committed events/sec baseline survives CI runners of a different
   speed as a ratio (events per calibration op). *)
let calibration () =
  let a = Array.make 4096 0 in
  let iters = 20_000_000 in
  let best = ref 0.0 in
  for _rep = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    let x = ref seed in
    for i = 0 to iters - 1 do
      x := (!x * 0x9E3779B1) lxor (!x asr 13);
      Array.unsafe_set a (i land 4095) !x
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if a.(0) = min_int then print_string "";
    let r = float_of_int iters /. dt in
    if r > !best then best := r
  done;
  !best

(* --- JSON ----------------------------------------------------------- *)

let config_json ~calib m =
  let rate = float_of_int m.events /. m.best_dt in
  Printf.sprintf
    "    {\"name\": %S, \"events\": %d, \"messages_sent\": %d, \
     \"seconds_best\": %.4f, \"events_per_sec\": %.0f, \
     \"events_per_calib_op\": %.6f, \"minor_words_per_event\": %.2f}"
    m.m_cfg.cname m.events m.sent m.best_dt rate (rate /. calib *. 1000.0)
    m.words_per_event

let profile_json (r : Obs.Prof.report) =
  let rows =
    List.map
      (fun (row : Obs.Prof.row) ->
        Printf.sprintf
          "      {\"category\": %S, \"probes\": %d, \"seconds\": %.4f, \
           \"time_share\": %.4f, \"minor_words\": %.0f, \"alloc_share\": \
           %.4f}"
          row.Obs.Prof.label row.Obs.Prof.probes row.Obs.Prof.seconds
          row.Obs.Prof.time_share row.Obs.Prof.minor_words
          row.Obs.Prof.alloc_share)
      r.Obs.Prof.rows
  in
  Printf.sprintf
    "  \"profile\": {\n\
    \    \"total_seconds\": %.4f,\n\
    \    \"total_minor_words\": %.0f,\n\
    \    \"rows\": [\n%s\n    ]\n\
    \  }"
    r.Obs.Prof.total_seconds r.Obs.Prof.total_minor_words
    (String.concat ",\n" rows)

(* --- Regression gate ------------------------------------------------ *)

(* The baseline is our own BENCH_engine.json: a flat scan is enough to
   pull one numeric field out of one named config object (no JSON
   library in the build). *)
let scan_number json ~anchor ~key =
  let find sub from =
    let n = String.length json and m = String.length sub in
    let rec go i =
      if i + m > n then None
      else if String.sub json i m = sub then Some (i + m)
      else go (i + 1)
    in
    go from
  in
  match find anchor 0 with
  | None -> None
  | Some p -> (
      match find ("\"" ^ key ^ "\":") p with
      | None -> None
      | Some q ->
          let n = String.length json in
          let q = ref q in
          while
            !q < n && (json.[!q] = ' ' || json.[!q] = '\n' || json.[!q] = '\t')
          do
            incr q
          done;
          let s = !q in
          while
            !q < n
            && (match json.[!q] with
               | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
               | _ -> false)
          do
            incr q
          done;
          float_of_string_opt (String.sub json s (!q - s)))

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let gate ~baseline_path ~calib measured =
  let baseline =
    try read_file baseline_path
    with Sys_error msg ->
      Printf.eprintf "error: engine gate: cannot read baseline: %s\n" msg;
      exit 1
  in
  (match (scan_number baseline ~anchor:"\"bench\"" ~key:"fast", !Util.fast)
   with
  | Some b, f when (b <> 0.0) <> f ->
      Printf.eprintf
        "error: engine gate: baseline fast=%b but this run fast=%b\n"
        (b <> 0.0) f;
      exit 1
  | _ -> ());
  let rate_tol = 0.15 and alloc_tol = 0.10 in
  let failed = ref false in
  Printf.printf "\n  gate vs %s (rate -%.0f%%, allocs +%.0f%%):\n"
    baseline_path (100.0 *. rate_tol) (100.0 *. alloc_tol);
  List.iter
    (fun m ->
      let anchor = Printf.sprintf "\"name\": %S" m.m_cfg.cname in
      let b_rel = scan_number baseline ~anchor ~key:"events_per_calib_op" in
      let b_words = scan_number baseline ~anchor ~key:"minor_words_per_event" in
      match (b_rel, b_words) with
      | None, _ | _, None ->
          Printf.eprintf "error: engine gate: config %s missing in baseline\n"
            m.m_cfg.cname;
          failed := true
      | Some b_rel, Some b_words ->
          let rate = float_of_int m.events /. m.best_dt in
          let rel = rate /. calib *. 1000.0 in
          let rate_ok = rel >= b_rel *. (1.0 -. rate_tol) in
          let words_ok =
            m.words_per_event <= b_words *. (1.0 +. alloc_tol)
          in
          Printf.printf
            "    %-14s events/calib-op %8.3f vs %8.3f %s   words/event \
             %8.2f vs %8.2f %s\n"
            m.m_cfg.cname rel b_rel
            (if rate_ok then "ok  " else "FAIL")
            m.words_per_event b_words
            (if words_ok then "ok" else "FAIL");
          if not (rate_ok && words_ok) then failed := true)
    measured;
  if !failed then begin
    Printf.eprintf
      "error: engine bench regressed against the committed baseline\n";
    exit 1
  end
  else Printf.printf "    gate: ok\n"

(* --- Driver --------------------------------------------------------- *)

let run () =
  Util.print_header "Engine hot-path bench (events/sec, allocations/event)";
  Printf.printf
    "  seed %d, %d nodes, %d ops x %d hops, rpc relay + durable appends\n"
    seed n_nodes (ops ()) hops;
  let calib = calibration () in
  Printf.printf "  calibration: %.0f ops/sec\n%!" calib;
  let measured = List.map measure configs in
  (* Observability must be behaviorally inert: every configuration
     replays the same simulation. *)
  (match measured with
  | first :: rest ->
      List.iter
        (fun m ->
          if m.events <> first.events || m.sent <> first.sent then begin
            Printf.eprintf
              "error: engine bench: config %s dispatched %d events / %d \
               sends, %s dispatched %d / %d - observability perturbed the \
               run\n"
              m.m_cfg.cname m.events m.sent first.m_cfg.cname first.events
              first.sent;
            exit 1
          end)
        rest
  | [] -> ());
  List.iter
    (fun m ->
      Printf.printf
        "  %-14s %9d events  %12.0f events/sec  %8.2f minor words/event\n"
        m.m_cfg.cname m.events
        (float_of_int m.events /. m.best_dt)
        m.words_per_event)
    measured;
  (* Profiled run: where do the full-trace run's time and words go? *)
  let prof_cfg = List.find (fun c -> c.cname = "full-trace") configs in
  let _e, obs, _dt, _dw = run_once prof_cfg ~profile:true in
  let r = Obs.Prof.report (Obs.prof obs) in
  let share_sum field =
    List.fold_left (fun acc row -> acc +. field row) 0.0 r.Obs.Prof.rows
  in
  let t_sum = share_sum (fun (row : Obs.Prof.row) -> row.Obs.Prof.time_share)
  and w_sum =
    share_sum (fun (row : Obs.Prof.row) -> row.Obs.Prof.alloc_share)
  in
  if r.Obs.Prof.total_seconds > 0.0 && abs_float (t_sum -. 1.0) > 0.01 then begin
    Printf.eprintf "error: profile time shares sum to %.4f, not 1\n" t_sum;
    exit 1
  end;
  if r.Obs.Prof.total_minor_words > 0.0 && abs_float (w_sum -. 1.0) > 0.01
  then begin
    Printf.eprintf "error: profile alloc shares sum to %.4f, not 1\n" w_sum;
    exit 1
  end;
  if r.Obs.Prof.truncated > 0 || r.Obs.Prof.unbalanced > 0 then begin
    Printf.eprintf "error: profile probe stack: %d truncated, %d unbalanced\n"
      r.Obs.Prof.truncated r.Obs.Prof.unbalanced;
    exit 1
  end;
  Printf.printf "\n  profile of the full-trace run (shares of probed total):\n";
  List.iter
    (fun (row : Obs.Prof.row) ->
      Printf.printf "    %-26s %5.1f%% time  %5.1f%% allocs\n"
        row.Obs.Prof.label
        (100.0 *. row.Obs.Prof.time_share)
        (100.0 *. row.Obs.Prof.alloc_share))
    r.Obs.Prof.rows;
  let oc = open_out (Util.out_path "BENCH_engine.json") in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"engine\",\n\
    \  \"seed\": %d,\n\
    \  \"nodes\": %d,\n\
    \  \"ops\": %d,\n\
    \  \"hops\": %d,\n\
    \  \"fast\": %b,\n\
    \  \"calibration_ops_per_sec\": %.0f,\n\
    \  \"configs\": [\n%s\n  ],\n\
     %s\n\
     }\n"
    seed n_nodes (ops ()) hops !Util.fast calib
    (String.concat ",\n" (List.map (config_json ~calib) measured))
    (profile_json r);
  close_out oc;
  Printf.printf "\n  wrote BENCH_engine.json (seed %d)\n" seed;
  match !Util.gate with
  | Some path -> gate ~baseline_path:path ~calib measured
  | None -> ()
