(* Chaos harness comparison: every quorum system through every standard
   fault scenario, for both protocols.  Violations and stale reads must
   print as 0 everywhere — the scenarios stress liveness, never safety. *)

module C = Protocols.Chaos

let horizon () = if !Util.fast then 150.0 else 400.0

(* n differs across systems (15 vs 16), so scenarios are built per
   system: the partition group scales with n. *)
let mutex_specs = [ "majority(15)"; "hgrid(4x4)"; "htgrid(4x4)"; "htriang(15)" ]

let mutex_runs () =
  Printf.printf "\n== chaos: mutual exclusion under fault scenarios ==\n";
  Printf.printf "%s\n" (C.mutex_header ());
  List.iter
    (fun spec ->
      let system = Core.Registry.build_exn spec in
      List.iter
        (fun scenario ->
          let r = C.run_mutex ~seed:41 ~system scenario in
          Printf.printf "%s\n" (C.mutex_row r))
        (C.standard ~n:system.Quorum.System.n ~horizon:(horizon ())))
    mutex_specs

let store_runs () =
  Printf.printf "\n== chaos: replicated store under fault scenarios ==\n";
  Printf.printf "%s\n" (C.store_header ());
  let pairs =
    [
      ("majority(15)", "majority(15)", "majority(15)");
      ("hgrid-read(4x4)", "hgrid-write(4x4)", "hgrid-r/w(4x4)");
      ("htgrid(4x4)", "htgrid(4x4)", "htgrid(4x4)");
      ("htriang(15)", "htriang(15)", "htriang(15)");
    ]
  in
  List.iter
    (fun (rspec, wspec, name) ->
      let read_system = Core.Registry.build_exn rspec in
      let write_system = Core.Registry.build_exn wspec in
      List.iter
        (fun scenario ->
          let r =
            C.run_store ~seed:42 ~read_system ~write_system ~name scenario
          in
          Printf.printf "%s\n" (C.store_row r))
        (C.standard ~n:read_system.Quorum.System.n ~horizon:(horizon ())))
    pairs

let run () =
  mutex_runs ();
  store_runs ()
