(* Chaos harness comparison: every quorum system through every standard
   fault scenario, for both protocols.  Violations and stale reads must
   print as 0 everywhere — the scenarios stress liveness, never safety.

   With --jobs N the (system, scenario) grid is flattened into one pool
   task per run; every task builds its own system (nothing mutable is
   shared across domains) and renders its row — and metrics dump, under
   --metrics — to a string.  Rows print in grid order, so the output is
   byte-identical to the sequential sweep. *)

module C = Protocols.Chaos

let horizon () = if !Util.fast then 150.0 else 400.0

(* Under --metrics, each run gets its own registry and dumps it after
   the report row. *)
let maybe_obs () = if !Util.metrics then Some (Obs.create ()) else None

let metrics_dump ~spec ~label = function
  | None -> ""
  | Some obs ->
      Printf.sprintf "--- metrics %s / %s ---\n%s" spec label
        (Obs.Metrics.render (Obs.metrics obs))

(* Run the flattened task list, sequentially or on the bench pool, and
   print the rendered outputs in order. *)
let sweep tasks =
  let outputs =
    match Util.pool () with
    | None -> Array.map (fun task -> task ()) tasks
    | Some pool -> Exec.Pool.map_array pool (fun task -> task ()) tasks
  in
  Array.iter print_string outputs

(* n differs across systems (15 vs 16), so scenarios are built per
   system: the partition group scales with n. *)
let mutex_specs = [ "majority(15)"; "hgrid(4x4)"; "htgrid(4x4)"; "htriang(15)" ]

let mutex_runs () =
  Printf.printf "\n== chaos: mutual exclusion under fault scenarios ==\n";
  Printf.printf "%s\n" (C.mutex_header ());
  let tasks =
    List.concat_map
      (fun spec ->
        let n = (Util.system spec).Quorum.System.n in
        List.map
          (fun scenario () ->
            let system = Util.system spec in
            let obs = maybe_obs () in
            let r = C.run_mutex ~seed:41 ?obs ~system scenario in
            Printf.sprintf "%s\n%s" (C.mutex_row r)
              (metrics_dump ~spec ~label:scenario.C.label obs))
          (C.standard ~n ~horizon:(horizon ())))
      mutex_specs
  in
  sweep (Array.of_list tasks)

let store_runs () =
  Printf.printf "\n== chaos: replicated store under fault scenarios ==\n";
  Printf.printf "%s\n" (C.store_header ());
  let pairs =
    [
      ("majority(15)", "majority(15)", "majority(15)");
      ("hgrid-read(4x4)", "hgrid-write(4x4)", "hgrid-r/w(4x4)");
      ("htgrid(4x4)", "htgrid(4x4)", "htgrid(4x4)");
      ("htriang(15)", "htriang(15)", "htriang(15)");
    ]
  in
  let tasks =
    List.concat_map
      (fun (rspec, wspec, name) ->
        let n = (Util.system rspec).Quorum.System.n in
        List.map
          (fun scenario () ->
            let read_system = Util.system rspec in
            let write_system = Util.system wspec in
            let obs = maybe_obs () in
            let r =
              C.run_store ~seed:42 ?obs ~read_system ~write_system ~name
                scenario
            in
            Printf.sprintf "%s\n%s" (C.store_row r)
              (metrics_dump ~spec:name ~label:scenario.C.label obs))
          (C.standard ~n ~horizon:(horizon ())))
      pairs
  in
  sweep (Array.of_list tasks)

let run () =
  mutex_runs ();
  store_runs ()
