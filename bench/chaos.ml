(* Chaos harness comparison: every quorum system through every standard
   fault scenario, for both protocols.  Violations and stale reads must
   print as 0 everywhere — the scenarios stress liveness, never safety. *)

module C = Protocols.Chaos

let horizon () = if !Util.fast then 150.0 else 400.0

(* Under --metrics, each run gets its own registry and dumps it after
   the report row. *)
let maybe_obs () = if !Util.metrics then Some (Obs.create ()) else None

let dump_metrics ~spec ~label = function
  | None -> ()
  | Some obs ->
      Printf.printf "--- metrics %s / %s ---\n%s" spec label
        (Obs.Metrics.render (Obs.metrics obs))

(* n differs across systems (15 vs 16), so scenarios are built per
   system: the partition group scales with n. *)
let mutex_specs = [ "majority(15)"; "hgrid(4x4)"; "htgrid(4x4)"; "htriang(15)" ]

let mutex_runs () =
  Printf.printf "\n== chaos: mutual exclusion under fault scenarios ==\n";
  Printf.printf "%s\n" (C.mutex_header ());
  List.iter
    (fun spec ->
      let system = Core.Registry.build_exn spec in
      List.iter
        (fun scenario ->
          let obs = maybe_obs () in
          let r = C.run_mutex ~seed:41 ?obs ~system scenario in
          Printf.printf "%s\n" (C.mutex_row r);
          dump_metrics ~spec ~label:scenario.C.label obs)
        (C.standard ~n:system.Quorum.System.n ~horizon:(horizon ())))
    mutex_specs

let store_runs () =
  Printf.printf "\n== chaos: replicated store under fault scenarios ==\n";
  Printf.printf "%s\n" (C.store_header ());
  let pairs =
    [
      ("majority(15)", "majority(15)", "majority(15)");
      ("hgrid-read(4x4)", "hgrid-write(4x4)", "hgrid-r/w(4x4)");
      ("htgrid(4x4)", "htgrid(4x4)", "htgrid(4x4)");
      ("htriang(15)", "htriang(15)", "htriang(15)");
    ]
  in
  List.iter
    (fun (rspec, wspec, name) ->
      let read_system = Core.Registry.build_exn rspec in
      let write_system = Core.Registry.build_exn wspec in
      List.iter
        (fun scenario ->
          let obs = maybe_obs () in
          let r =
            C.run_store ~seed:42 ?obs ~read_system ~write_system ~name scenario
          in
          Printf.printf "%s\n" (C.store_row r);
          dump_metrics ~spec:name ~label:scenario.C.label obs)
        (C.standard ~n:read_system.Quorum.System.n ~horizon:(horizon ())))
    pairs

let run () =
  mutex_runs ();
  store_runs ()
