(* Chaos harness comparison: every quorum system through every standard
   and crash-recovery fault scenario, for all three protocols.
   Violations and stale reads must print as 0 everywhere — the
   scenarios stress liveness, never safety.

   With --jobs N the (system, scenario) grid is flattened into one pool
   task per run; every task builds its own system (nothing mutable is
   shared across domains) and renders its row — and metrics dump, under
   --metrics — to a string.  Rows print in grid order, so the output is
   byte-identical to the sequential sweep.

   Every run's seed is pinned (mutex 41, store 42, reconfig 43) and
   echoed into BENCH_chaos.json, so any reported row is replayed
   exactly by re-running with the same seed, scenario and system. *)

module C = Protocols.Chaos

let mutex_seed = 41
let store_seed = 42
let reconfig_seed = 43
let horizon () = if !Util.fast then 150.0 else 400.0
let scenarios ~n =
  C.standard ~n ~horizon:(horizon ())
  @ C.recovery ~n ~horizon:(horizon ())
  @ C.churn ~n ~horizon:(horizon ())

(* Under --metrics, each run gets its own registry and dumps it after
   the report row. *)
let maybe_obs () = if !Util.metrics then Some (Obs.create ()) else None

let metrics_dump ~spec ~label = function
  | None -> ""
  | Some obs ->
      Printf.sprintf "--- metrics %s / %s ---\n%s" spec label
        (Obs.Metrics.render (Obs.metrics obs))

(* Run the flattened task list, sequentially or on the bench pool, and
   print the rendered outputs in order.  Each task yields its report
   row (plus optional metrics dump) and a JSON object for
   BENCH_chaos.json. *)
let sweep tasks =
  let outputs =
    match Util.pool () with
    | None -> Array.map (fun task -> task ()) tasks
    | Some pool -> Exec.Pool.map_array pool (fun task -> task ()) tasks
  in
  Array.iter (fun (display, _) -> print_string display) outputs;
  Array.to_list (Array.map snd outputs)

let mutex_json (r : C.mutex_report) =
  Printf.sprintf
    "{\"system\": %S, \"scenario\": %S, \"seed\": %d, \"issued\": %d, \
     \"entries\": %d, \"violations\": %d, \"unavailable\": %d, \
     \"dead_letters\": %d, \"budget_hit\": %b}"
    r.C.system r.C.label r.C.seed r.C.issued r.C.entries r.C.violations
    r.C.unavailable r.C.dead_letters r.C.budget_hit

let store_json (r : C.store_report) =
  Printf.sprintf
    "{\"system\": %S, \"scenario\": %S, \"seed\": %d, \"issued\": %d, \
     \"reads_ok\": %d, \"writes_ok\": %d, \"stale_reads\": %d, \
     \"rejoins\": %d, \"rejoin_refusals\": %d, \"unavailable\": %d, \
     \"timeouts\": %d, \"budget_hit\": %b}"
    r.C.system r.C.label r.C.seed r.C.issued r.C.reads_ok r.C.writes_ok
    r.C.stale_reads r.C.rejoins r.C.rejoin_refusals r.C.unavailable
    r.C.timeouts r.C.budget_hit

let reconfig_json (r : C.reconfig_report) =
  Printf.sprintf
    "{\"system\": %S, \"scenario\": %S, \"seed\": %d, \"issued\": %d, \
     \"reads_ok\": %d, \"writes_ok\": %d, \"retries\": %d, \"failed\": %d, \
     \"stale_reads\": %d, \"epoch_switches\": %d, \"final_epoch\": %d, \
     \"budget_hit\": %b}"
    r.C.system r.C.label r.C.seed r.C.issued r.C.reads_ok r.C.writes_ok
    r.C.retries r.C.failed r.C.stale_reads r.C.epoch_switches
    r.C.final_epoch r.C.budget_hit

(* n differs across systems (15 vs 16), so scenarios are built per
   system: the partition group scales with n. *)
let mutex_specs = [ "majority(15)"; "hgrid(4x4)"; "htgrid(4x4)"; "htriang(15)" ]

let mutex_runs () =
  Printf.printf "\n== chaos: mutual exclusion under fault scenarios ==\n";
  Printf.printf "%s\n" (C.mutex_header ());
  let tasks =
    List.concat_map
      (fun spec ->
        let n = (Util.system spec).Quorum.System.n in
        List.map
          (fun scenario () ->
            let system = Util.system spec in
            let obs = maybe_obs () in
            let r = C.run_mutex ~seed:mutex_seed ?obs ~system scenario in
            ( Printf.sprintf "%s\n%s" (C.mutex_row r)
                (metrics_dump ~spec ~label:scenario.C.label obs),
              mutex_json r ))
          (scenarios ~n))
      mutex_specs
  in
  sweep (Array.of_list tasks)

let store_runs () =
  Printf.printf "\n== chaos: replicated store under fault scenarios ==\n";
  Printf.printf "%s\n" (C.store_header ());
  let pairs =
    [
      ("majority(15)", "majority(15)", "majority(15)");
      ("hgrid-read(4x4)", "hgrid-write(4x4)", "hgrid-r/w(4x4)");
      ("htgrid(4x4)", "htgrid(4x4)", "htgrid(4x4)");
      ("htriang(15)", "htriang(15)", "htriang(15)");
    ]
  in
  let tasks =
    List.concat_map
      (fun (rspec, wspec, name) ->
        let n = (Util.system rspec).Quorum.System.n in
        List.map
          (fun scenario () ->
            let read_system = Util.system rspec in
            let write_system = Util.system wspec in
            let obs = maybe_obs () in
            let r =
              C.run_store ~seed:store_seed ?obs ~read_system ~write_system
                ~name scenario
            in
            ( Printf.sprintf "%s\n%s" (C.store_row r)
                (metrics_dump ~spec:name ~label:scenario.C.label obs),
              store_json r ))
          (scenarios ~n))
      pairs
  in
  sweep (Array.of_list tasks)

(* Reconfiguration under chaos: switch initial -> next -> initial
   mid-traffic while the scenario's faults (including crash-restart
   and amnesia windows) land during the seal / install sequence. *)
let reconfig_runs () =
  Printf.printf "\n== chaos: reconfiguration under fault scenarios ==\n";
  Printf.printf "%s\n" (C.reconfig_header ());
  let pairs =
    [
      ("majority(15)", "htriang(15)", "majority->htriang");
      ("htgrid(4x4)", "hgrid(4x4)", "htgrid->hgrid");
    ]
  in
  let tasks =
    List.concat_map
      (fun (ispec, nspec, name) ->
        let n =
          max (Util.system ispec).Quorum.System.n
            (Util.system nspec).Quorum.System.n
        in
        List.map
          (fun scenario () ->
            let initial = Util.system ispec in
            let next = Util.system nspec in
            let obs = maybe_obs () in
            let r =
              C.run_reconfig ~seed:reconfig_seed ?obs ~initial ~next ~name
                scenario
            in
            ( Printf.sprintf "%s\n%s" (C.reconfig_row r)
                (metrics_dump ~spec:name ~label:scenario.C.label obs),
              reconfig_json r ))
          (scenarios ~n))
      pairs
  in
  sweep (Array.of_list tasks)

let write_json ~mutex ~store ~reconfig =
  let oc = open_out (Util.out_path "BENCH_chaos.json") in
  let section rows =
    String.concat ",\n" (List.map (fun j -> "    " ^ j) rows)
  in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"chaos\",\n\
    \  \"fast\": %b,\n\
    \  \"horizon\": %g,\n\
    \  \"seeds\": {\"mutex\": %d, \"store\": %d, \"reconfig\": %d},\n\
    \  \"mutex\": [\n%s\n  ],\n\
    \  \"store\": [\n%s\n  ],\n\
    \  \"reconfig\": [\n%s\n  ]\n\
     }\n"
    !Util.fast (horizon ()) mutex_seed store_seed reconfig_seed
    (section mutex) (section store) (section reconfig);
  close_out oc

let run () =
  let mutex = mutex_runs () in
  let store = store_runs () in
  let reconfig = reconfig_runs () in
  write_json ~mutex ~store ~reconfig;
  Printf.printf "\n  wrote BENCH_chaos.json (seeds: mutex %d, store %d, reconfig %d)\n"
    mutex_seed store_seed reconfig_seed
