(* Ablation studies for the design choices the paper calls out:

   - section 7: "failure probability can be further [improved] in the
     modified construction using slightly rectangular grids instead of
     square grids (the same situation does not occur in the original
     construction)" — sweep grid shapes at fixed n ~ 24;
   - section 5 "introducing new elements": each growth rule should
     improve availability;
   - the T-grid refinement itself: h-grid vs h-T-grid vs flat variants
     at matched sizes. *)

open Core

let shapes () =
  Util.print_header
    "Ablation: grid shape at n ~ 24 (rows x cols, 2x2 logical blocks)";
  Printf.printf "%-8s %-12s %-12s %s\n" "shape" "h-grid F(.1)" "h-T F(.1)"
    "h-T F(.2)";
  List.iter
    (fun (rows, cols) ->
      let g = Hgrid.auto_2x2 ~rows ~cols () in
      let h = Hgrid.failure_probability g Read_write ~p:0.1 in
      let tpoly = Analysis.Failure.exact_poly (Htgrid.system g) in
      Printf.printf "%dx%-6d %-12.6f %-12.6f %.6f\n" rows cols h
        (Quorum.Failure_poly.eval tpoly ~p:0.1)
        (Quorum.Failure_poly.eval tpoly ~p:0.2))
    [ (4, 6); (6, 4); (3, 8); (8, 3); (2, 12); (12, 2); (5, 5) ];
  Printf.printf
    "(expected: 6x4 is the best h-T-grid shape; 8x3 is worse than 6x4;\n\
    \ 6x4 h-T-grid beats even the 25-node square, as in section 4.3)\n"

let growth () =
  Util.print_header "Ablation: h-triang growth rules (section 5)";
  let base = Htriang.standard ~rows:5 () in
  let report label t =
    Printf.printf "%-24s n=%-3d F(0.1)=%.6f F(0.3)=%.6f\n" label t.Htriang.n
      (Htriang.failure_probability t ~p:0.1)
      (Htriang.failure_probability t ~p:0.3)
  in
  report "standard d=5" base;
  (match Htriang.grow_unit_triangle base with
  | Some t -> report "+ unit triangle -> 2x" t
  | None -> ());
  (match Htriang.grow_unit_grid base with
  | Some t -> report "+ 1x1 grid -> 1x2" t
  | None -> ());
  (match Htriang.grow_square_grid base with
  | Some t -> report "+ m^2 grid -> (m+1)^2" t
  | None -> ());
  (* chain them *)
  let chained =
    List.fold_left
      (fun t grow -> match grow t with Some t' -> t' | None -> t)
      base
      [
        Htriang.grow_unit_triangle;
        Htriang.grow_unit_grid;
        Htriang.grow_square_grid;
      ]
  in
  report "all three chained" chained;
  report "standard d=6 (reference)" (Htriang.standard ~rows:6 ())

(* Beyond the paper: heterogeneous reliability.  The paper's model is
   iid; the hetero closed forms let us ask where flaky processes hurt a
   hierarchical construction most. *)
let heterogeneous () =
  Util.print_header
    "Ablation (extension): where do unreliable processes hurt most?";
  let t = Htriang.standard ~rows:5 () in
  let flaky placement i = if List.mem i placement then 0.35 else 0.05 in
  Printf.printf
    "h-triang(15), three processes at p = 0.35 (rest 0.05):\n";
  List.iter
    (fun (label, placement) ->
      Printf.printf "  %-28s F = %.6f\n" label
        (Htriang.failure_probability_hetero t ~p_of:(flaky placement)))
    [
      ("top rows (T1: 0,1,2)", [ 0; 1; 2 ]);
      ("sub-grid column (3,6,10)", [ 3; 6; 10 ]);
      ("bottom row (10..14 corners)", [ 10; 12; 14 ]);
      ("T2 spine (5,8,12)", [ 5; 8; 12 ]);
      ("uniform reference p=0.11", []);
    ];
  Printf.printf "  (uniform p = 0.11 reference: F = %.6f)\n"
    (Htriang.failure_probability t ~p:0.11);
  let g = Hgrid.auto_2x2 ~rows:4 ~cols:4 () in
  Printf.printf
    "\nh-grid(4x4) read-write, one row of flaky processes (p = 0.35):\n";
  List.iter
    (fun row ->
      let p_of i = if i / 4 = row then 0.35 else 0.05 in
      Printf.printf "  row %d flaky: F = %.6f\n" row
        (Hgrid.failure_probability_hetero g Read_write ~p_of))
    [ 0; 1; 2; 3 ];
  Printf.printf
    "(h-T-grid under the same stress, by exact enumeration):\n";
  List.iter
    (fun row ->
      let p_of i = if i / 4 = row then 0.35 else 0.05 in
      Printf.printf "  row %d flaky: F = %.6f\n" row
        (Analysis.Failure.exact_hetero (Htgrid.system g) ~p_of))
    [ 0; 1; 2; 3 ];
  Printf.printf
    "(the T-grid leans on low rows for its short quorums: flaky bottom\n\
    \ rows cost it more than the symmetric h-grid)\n"

let refinement () =
  Util.print_header
    "Ablation: what the T-grid refinement buys at matched sizes";
  Printf.printf "%-10s %-22s %-12s %-12s %s\n" "n" "structure" "F(0.1)"
    "min |Q|" "LP load";
  let entry label sys =
    let stats = Analysis.Metrics.of_system sys in
    let lp = Analysis.Load.optimal sys in
    Printf.printf "%-10d %-22s %-12.6f %-12d %.1f%%\n" sys.Quorum.System.n
      label
      (Analysis.Failure.exact sys ~p:0.1)
      stats.min_size (100.0 *. lp.load)
  in
  let g16 = Hgrid.auto_2x2 ~rows:4 ~cols:4 () in
  entry "flat grid RW [3]" (Systems.Grid.system ~rows:4 ~cols:4 Systems.Grid.Read_write);
  entry "flat T-grid (wall)" (Systems.Grid.t_grid ~rows:4 ~cols:4 ());
  entry "h-grid RW [9]" (Hgrid.rw_system g16);
  entry "h-T-grid (this paper)" (Htgrid.system g16);
  entry "h-triang(15)" (Htriang.system (Htriang.standard ~rows:5 ()))
