(* Regeneration of the paper's Tables 1-5 and the in-text numbers of
   sections 4.3 and 6.  Every printed cell carries the paper's value
   alongside ours. *)

module System = Quorum.System
module Strategy = Quorum.Strategy
open Core

let ps = [ 0.1; 0.2; 0.3; 0.5 ]

(* ------------------------------------------------------------------ *)
(* Table 1: h-grid vs h-T-grid failure probability.                    *)
(* ------------------------------------------------------------------ *)

let table1_paper =
  [
    (* label, rows, cols, h-grid cells, h-T-grid cells (p = .1 .2 .3 .5) *)
    ( "3x3", 3, 3,
      [ 0.016893; 0.109235; 0.286224; 0.716797 ],
      [ 0.015213; 0.098585; 0.259783; 0.667969 ] );
    ( "4x4", 4, 4,
      [ 0.005799; 0.069318; 0.243795; 0.746628 ],
      [ 0.005361; 0.063866; 0.225066; 0.706604 ] );
    ( "5x5", 5, 5,
      [ 0.001753; 0.039439; 0.191581; 0.751019 ],
      [ 0.001621; 0.036300; 0.176290; 0.708871 ] );
    ( "4x6 (6 lines x 4 columns)", 6, 4,
      [ 0.001949; 0.034161; 0.167172; 0.725377 ],
      [ 0.000611; 0.016690; 0.104402; 0.598435 ] );
  ]

let table1 () =
  Util.print_header
    "Table 1: failure probability, hierarchical grid vs hierarchical T-grid";
  List.iter
    (fun (label, rows, cols, h_paper, t_paper) ->
      let g = Hgrid.auto_2x2 ~rows ~cols () in
      Printf.printf "\n%s grid, 2x2 logical blocks:\n" label;
      let h_ours = List.map (fun p -> Hgrid.failure_probability g Read_write ~p) ps in
      Util.row "  h-grid" (List.map2 Util.cell h_ours h_paper);
      let t_ours = Util.failure_row (Htgrid.system g) ps in
      Util.row "  h-T-grid" (List.map2 Util.cell t_ours t_paper))
    table1_paper

(* ------------------------------------------------------------------ *)
(* Tables 2 and 3: failure probability across seven systems.           *)
(* ------------------------------------------------------------------ *)

(* (spec, display name, paper cells at p = .1 .2 .3 .5) *)
let lineup_15 =
  [
    ("majority(15)", "Majority(15)", [ 0.000034; 0.004240; 0.050013; 0.5 ]);
    ("hqs(5-3)", "HQS(15)", [ 0.000210; 0.009567; 0.070946; 0.5 ]);
    ("cwlog(14)", "CWlog(14)", [ 0.001639; 0.021787; 0.099915; 0.5 ]);
    ("htgrid(4x4)", "h-T-grid(16)", [ 0.015213; 0.098585; 0.259783; 0.667969 ]);
    ("paths(2)", "Paths(12~13)", [ 0.007351; 0.063493; 0.206296; 0.662598 ]);
    ("y(15)", "Y(15)", [ 0.000745; 0.017603; 0.093599; 0.5 ]);
    ("htriang(15)", "h-triang(15)", [ 0.000677; 0.016577; 0.090712; 0.5 ]);
  ]

let lineup_28 =
  [
    ("majority(28)", "Majority(28)", [ 0.000000; 0.000229; 0.014257; 0.5 ]);
    ("hqs(3-3-3)", "HQS(27)", [ 0.000016; 0.002681; 0.039626; 0.5 ]);
    ("cwlog(29)", "CWlog(29)", [ 0.000205; 0.006865; 0.056988; 0.5 ]);
    ("htgrid(5x5)", "h-T-grid(25)", [ 0.001621; 0.036300; 0.176290; 0.708872 ]);
    ("paths(3)", "Paths(24~25)", [ 0.001201; 0.025045; 0.136541; 0.678858 ]);
    ("y(28)", "Y(28)", [ 0.000057; 0.005012; 0.052777; 0.5 ]);
    ("htriang(28)", "h-triang(28)", [ 0.000055; 0.004851; 0.051670; 0.5 ]);
  ]

(* Closed forms where enumeration would be 2^27+ work. *)
let fp_of_spec spec p =
  match spec with
  | "majority(28)" -> Systems.Majority.failure_probability ~n:28 ~p
  | "hqs(3-3-3)" -> Systems.Hqs.failure_probability ~branching:[ 3; 3; 3 ] ~p
  | "cwlog(29)" -> Systems.Cwlog.failure_probability ~n:29 ~p
  | "htriang(28)" ->
      Htriang.failure_probability (Htriang.standard ~rows:7 ()) ~p
  | _ -> Util.failure_probability (Util.system spec) ~p

let fp_row_of_spec spec =
  match spec with
  | "majority(28)" | "hqs(3-3-3)" | "cwlog(29)" | "htriang(28)" ->
      List.map (fp_of_spec spec) ps
  | _ -> Util.failure_row (Util.system spec) ps

let cross_table title lineup =
  Util.print_header title;
  Printf.printf "(columns: p = 0.1, 0.2, 0.3, 0.5)\n";
  List.iter
    (fun (spec, name, paper) ->
      Printf.printf "%-14s " name;
      let ours = fp_row_of_spec spec in
      Printf.printf "%s\n"
        (String.concat "  " (List.map2 Util.cell ours paper)))
    lineup

let table2 () =
  cross_table "Table 2: failure probability, systems with ~15 nodes" lineup_15;
  (* The paper's Table 2 h-T-grid(16) cells equal its own Table 1 3x3
     (9-node) h-T-grid column; the 16-node values are Table 1's 4x4
     column, which we match exactly.  Exhibit: *)
  let g9 = Hgrid.auto_2x2 ~rows:3 ~cols:3 () in
  let ours = Util.failure_row (Htgrid.system g9) ps in
  Printf.printf "%-14s %s\n" "h-T-grid(9)"
    (String.concat "  "
       (List.map2 Util.cell ours [ 0.015213; 0.098585; 0.259783; 0.667969 ]));
  Printf.printf
    "(note: the paper's h-T-grid(16) row duplicates its Table 1 3x3 column;\n\
    \ the 9-node instance above matches those cells exactly, while our\n\
    \ 16-node row matches the paper's own Table 1 4x4 column.)\n"

let table3 () =
  cross_table "Table 3: failure probability, systems with ~28 nodes" lineup_28

(* ------------------------------------------------------------------ *)
(* Table 4: quorum sizes and load.                                      *)
(* ------------------------------------------------------------------ *)

type size_load = {
  name : string;
  min_size : string;
  max_size : string;
  load : string;
}

let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)

let exact_entry name system ~paper_min ~paper_max ~paper_load =
  let stats = Analysis.Metrics.of_system system in
  let lp = Analysis.Load.optimal system in
  {
    name;
    min_size = Printf.sprintf "%d (paper %d)" stats.min_size paper_min;
    max_size = Printf.sprintf "%d (paper %d)" stats.max_size paper_max;
    load = Printf.sprintf "%s (paper %s)" (pct lp.load) (pct paper_load);
  }

(* Majority with an even universe: one 2-vote process, quorums of 14
   (with it) or 15 (without).  The optimal strategy mixes the two
   symmetric families; balancing gives load (n/2+1)/(n+1). *)
let majority_even_load n = (float_of_int ((n / 2) + 1)) /. float_of_int (n + 1)

let sampled_entry name system ~trials ~paper_min ~paper_max ~paper_load =
  let stats = Analysis.Metrics.sampled ~trials (Quorum.Rng.create 17) system in
  let e =
    Strategy.empirical_of_select ~n:system.System.n ~trials
      (Quorum.Rng.create 18) system.System.select
  in
  {
    name;
    min_size = Printf.sprintf "%d* (paper %d)" stats.min_size paper_min;
    max_size = Printf.sprintf "%d* (paper %s)" stats.max_size paper_max;
    load =
      Printf.sprintf "%s* (paper %s)" (pct e.Strategy.max_load)
        (pct paper_load);
  }

let print_entries group entries =
  Printf.printf "\n~%s nodes:\n" group;
  Printf.printf "  %-16s %-18s %-18s %s\n" "system" "min quorum" "max quorum"
    "load";
  List.iter
    (fun e ->
      Printf.printf "  %-16s %-18s %-18s %s\n" e.name e.min_size e.max_size
        e.load)
    entries

let table4 () =
  Util.print_header "Table 4: quorum sizes and load";
  Printf.printf
    "(* = sampled via random minimal quorums / empirical strategy; the\n\
    \ paper's h-T-grid loads are its strategy values, ours are the LP\n\
    \ optimum unless starred)\n";
  let g16 = Hgrid.auto_2x2 ~rows:4 ~cols:4 () in
  let entries_15 =
    [
      exact_entry "Majority(15)" (Systems.Majority.make 15) ~paper_min:8
        ~paper_max:8 ~paper_load:0.533;
      exact_entry "HQS(15)"
        (Systems.Hqs.system ~branching:[ 5; 3 ] ())
        ~paper_min:6 ~paper_max:6 ~paper_load:0.40;
      (let tradeoff = Systems.Cwlog.tradeoff_strategy ~n:14 in
       let e =
         exact_entry "CWlog(14)"
           (Systems.Cwlog.system ~n:14 ())
           ~paper_min:3 ~paper_max:6 ~paper_load:0.555
       in
       {
         e with
         load =
           Printf.sprintf "%s tradeoff / %s LP (paper %s)"
             (pct (Strategy.system_load tradeoff))
             (pct (Analysis.Load.optimal (Systems.Cwlog.system ~n:14 ())).load)
             (pct 0.555);
       });
      exact_entry "h-T-grid(16)" (Htgrid.system g16) ~paper_min:4 ~paper_max:7
        ~paper_load:0.365;
      exact_entry "Paths(12)"
        (Systems.Paths.system ~d:2 ())
        ~paper_min:5 ~paper_max:5 ~paper_load:0.392;
      exact_entry "Y(15)"
        (Systems.Y_system.system ~rows:5 ())
        ~paper_min:5 ~paper_max:6 ~paper_load:0.346;
      exact_entry "h-triang(15)"
        (Htriang.system (Htriang.standard ~rows:5 ()))
        ~paper_min:5 ~paper_max:5 ~paper_load:0.333;
    ]
  in
  print_entries "15" entries_15;
  let g25 = Hgrid.auto_2x2 ~rows:5 ~cols:5 () in
  let entries_28 =
    [
      {
        name = "Majority(28)";
        min_size = "14 (paper 14)";
        max_size = "15 (paper 14)";
        load =
          Printf.sprintf "%s (paper %s)" (pct (majority_even_load 28))
            (pct 0.51);
      };
      {
        (* 3^3 leaves, all quorums 2^3 = 8; symmetric, load = 8/27. *)
        name = "HQS(27)";
        min_size = "8 (paper 8)";
        max_size = "8 (paper 8)";
        load =
          Printf.sprintf "%s (paper %s)" (pct (8.0 /. 27.0)) (pct 0.296);
      };
      (let tradeoff = Systems.Cwlog.tradeoff_strategy ~n:29 in
       let e =
         exact_entry "CWlog(29)"
           (Systems.Cwlog.system ~n:29 ())
           ~paper_min:4 ~paper_max:10 ~paper_load:0.437
       in
       {
         e with
         load =
           Printf.sprintf "%s tradeoff / %s LP (paper %s)"
             (pct (Strategy.system_load tradeoff))
             (pct (Analysis.Load.optimal (Systems.Cwlog.system ~n:29 ())).load)
             (pct 0.437);
       });
      exact_entry "h-T-grid(25)" (Htgrid.system g25) ~paper_min:5 ~paper_max:9
        ~paper_load:0.34;
      sampled_entry "Paths(24)"
        (Systems.Paths.system ~d:3 ())
        ~trials:4000 ~paper_min:7 ~paper_max:"-" ~paper_load:0.282;
      sampled_entry "Y(28)"
        (Systems.Y_system.system ~rows:7 ())
        ~trials:4000 ~paper_min:7 ~paper_max:"11" ~paper_load:0.289;
      exact_entry "h-triang(28)"
        (Htriang.system (Htriang.standard ~rows:7 ()))
        ~paper_min:7 ~paper_max:7 ~paper_load:0.25;
    ]
  in
  print_entries "28" entries_28;
  (* ~100 nodes: structural values (quorum enumeration is astronomical,
     exactly as in the paper, which reports only sizes here). *)
  (* 99 = a complete CWlog wall (25 rows, bottom width 5) - the
     paper's "~100" instance. *)
  let cw100 = Systems.Cwlog.widths_for 99 in
  let d100 = Array.length cw100 in
  let entries_100 =
    [
      {
        name = "Majority(101)";
        min_size = "51 (paper 51)";
        max_size = "51 (paper 51)";
        load = pct (51.0 /. 101.0);
      };
      {
        name = "HQS(~100)";
        min_size = Printf.sprintf "%.0f = n^0.63 (paper ~19)" (100.0 ** 0.63);
        max_size = "same";
        load = pct (100.0 ** (-0.37));
      };
      {
        name = "CWlog(99)";
        min_size = Printf.sprintf "%d (paper 5)" cw100.(d100 - 1);
        max_size = Printf.sprintf "%d (paper 25)" (1 + d100 - 1);
        load = "~1/lg n";
      };
      {
        name = "h-T-grid(100)";
        min_size = "10 (paper 10)";
        max_size = "19 (paper 19)";
        load = "> 15%";
      };
      sampled_entry "Paths(112)"
        (Systems.Paths.system ~d:7 ())
        ~trials:300 ~paper_min:15 ~paper_max:"-" ~paper_load:0.134;
      sampled_entry "Y(105)"
        (Systems.Y_system.system ~rows:14 ())
        ~trials:300 ~paper_min:14 ~paper_max:"-" ~paper_load:0.135;
      {
        name = "h-triang(105)";
        min_size = "14 (paper 14)";
        max_size = "14 (paper 14)";
        load =
          pct (Htriang.system_load (Htriang.standard ~rows:14 ()));
      };
    ]
  in
  print_entries "100" entries_100

(* ------------------------------------------------------------------ *)
(* Table 5: asymptotic properties, verified numerically.                *)
(* ------------------------------------------------------------------ *)

let table5 () =
  Util.print_header
    "Table 5: asymptotic properties (numeric check of the claimed forms)";
  Printf.printf
    "%-10s %-26s %-14s %s\n" "system" "c(S) measured vs formula"
    "same size?" "load (measured vs formula)";
  (* For each family, instantiate two sizes and compare the smallest
     quorum and load against the claimed asymptotic form. *)
  let check_c name actual formula_value same_size load_str =
    Printf.printf "%-10s %3d vs %-18.1f %-14s %s\n" name actual formula_value
      same_size load_str
  in
  (* Majority *)
  let n = 29 in
  check_c "Majority"
    (Systems.Majority.quorum_size n)
    (float_of_int (n + 1) /. 2.0)
    "yes"
    (Printf.sprintf "%s vs 1/2" (pct (float_of_int ((n + 1) / 2) /. float_of_int n)));
  (* HQS: 3^3 = 27 leaves *)
  check_c "HQS"
    (Systems.Hqs.quorum_size ~branching:[ 3; 3; 3 ])
    (27.0 ** 0.63) "yes"
    (Printf.sprintf "%s vs n^-0.37 = %s"
       (pct (8.0 /. 27.0))
       (pct (27.0 ** (-0.37))));
  (* CWlog *)
  let cw = Systems.Cwlog.system ~n:29 () in
  let cw_stats = Analysis.Metrics.of_system cw in
  let lg n = log (float_of_int n) /. log 2.0 in
  check_c "CWlog" cw_stats.min_size
    (lg 29 -. (log (lg 29) /. log 2.0))
    "no"
    (Printf.sprintf "%s vs 1/lg n = %s"
       (pct (Analysis.Load.optimal cw).load)
       (pct (1.0 /. lg 29)));
  (* h-T-grid *)
  let g = Hgrid.auto_2x2 ~rows:5 ~cols:5 () in
  let tg = Htgrid.system g in
  let tg_stats = Analysis.Metrics.of_system tg in
  check_c "h-T-grid" tg_stats.min_size (sqrt 25.0) "no (avg > 1.5 sqrt n)"
    (Printf.sprintf "%s vs > 1.5/sqrt n = %s"
       (pct (Analysis.Load.optimal tg).load)
       (pct (1.5 /. sqrt 25.0)));
  (* Paths *)
  check_c "Paths"
    (Analysis.Metrics.smallest_quorum (Systems.Paths.system ~d:3 ()))
    (sqrt (2.0 *. 24.0))
    "no" "in [sqrt2/sqrt n, 2 sqrt2/sqrt n]";
  (* Y *)
  check_c "Y"
    (Analysis.Metrics.smallest_quorum (Systems.Y_system.system ~rows:7 ()))
    (sqrt (2.0 *. 28.0))
    "no"
    (Printf.sprintf "> sqrt2/sqrt n = %s" (pct (sqrt 2.0 /. sqrt 28.0)));
  (* h-triang *)
  let ht = Htriang.standard ~rows:7 () in
  let ht_stats = Analysis.Metrics.of_system (Htriang.system ht) in
  check_c "h-triang" ht_stats.min_size
    (sqrt (2.0 *. 28.0))
    "yes"
    (Printf.sprintf "%s vs sqrt2/sqrt n = %s"
       (pct (Htriang.system_load ht))
       (pct (sqrt 2.0 /. sqrt 28.0)));
  (* Growth of c(S) with n for h-triang: constant-per-instance, ~sqrt(2n). *)
  Printf.printf
    "\nh-triang quorum size vs sqrt(2n) as the triangle grows:\n";
  List.iter
    (fun rows ->
      let n = rows * (rows + 1) / 2 in
      Printf.printf "  d=%2d  n=%4d  |Q|=%2d  sqrt(2n)=%.1f  load=%s\n" rows n
        rows
        (sqrt (2.0 *. float_of_int n))
        (pct (Htriang.system_load (Htriang.standard ~rows ()))))
    [ 5; 7; 10; 14; 20; 30; 45 ]

(* ------------------------------------------------------------------ *)
(* Section 4.3 in-text numbers.                                         *)
(* ------------------------------------------------------------------ *)

let sect43 () =
  Util.print_header
    "Section 4.3: h-T-grid strategies on the 4x4 grid (in-text numbers)";
  let flat = Hgrid.flat ~rows:4 ~cols:4 in
  let s = Htgrid.flat_row_strategy flat in
  Printf.printf
    "optimal row strategy:   avg quorum size %.2f (paper 5.8), load %s (paper 36.5%%)\n"
    (Strategy.average_quorum_size s)
    (pct (Strategy.system_load s));
  let rng = Quorum.Rng.create 23 in
  let hier = Hgrid.of_dims [ (2, 2); (2, 2) ] in
  let e =
    Strategy.empirical_of_select ~n:16 ~trials:200_000 rng
      (Htgrid.select_lower_line ~epsilon:0.1 hier)
  in
  Printf.printf
    "all-quorums variant:    avg quorum size %.2f (paper 5.9), load %s (paper 41%%)  [epsilon = 0.1, hierarchical]\n"
    e.Strategy.avg_size
    (pct e.Strategy.max_load);
  let lower_bound_avg = 1.5 *. 4.0 -. 0.5 in
  Printf.printf
    "lower bounds (paper):   avg size >= %.2f (paper ~5.5), load >= %s (paper 34.375%%)\n"
    lower_bound_avg
    (pct (lower_bound_avg /. 16.0));
  let lp = Analysis.Load.optimal (Htgrid.system flat) in
  Printf.printf "LP-optimal load over all strategies: %s\n" (pct lp.load)

(* ------------------------------------------------------------------ *)
(* Section 6 in-text numbers.                                           *)
(* ------------------------------------------------------------------ *)

let sect6 () =
  Util.print_header "Section 6: CWlog and Y strategy numbers (in-text)";
  List.iter
    (fun (n, paper_avg, paper_load) ->
      let tradeoff = Systems.Cwlog.tradeoff_strategy ~n in
      Printf.printf
        "CWlog(%d) tradeoff strategy: avg size %.2f (paper %.2f), load %s (paper %s)\n"
        n
        (Strategy.average_quorum_size tradeoff)
        paper_avg
        (pct (Strategy.system_load tradeoff))
        (pct paper_load);
      let lp = Analysis.Load.optimal (Systems.Cwlog.system ~n ()) in
      Printf.printf
        "           LP-optimal load %s with avg size %.2f (the tradeoff favours size)\n"
        (pct lp.load)
        (Strategy.average_quorum_size lp.strategy))
    [ (14, 4.0, 0.555); (29, 5.25, 0.437) ];
  let y28 = Systems.Y_system.system ~rows:7 () in
  let stats = Analysis.Metrics.sampled ~trials:8000 (Quorum.Rng.create 19) y28 in
  Printf.printf
    "Y(28): sampled avg minimal-quorum size %.2f (paper 8.1), sampled-strategy load %s (paper 28.9%%)\n"
    stats.avg_size
    (pct
       (Strategy.empirical_of_select ~n:28 ~trials:8000 (Quorum.Rng.create 20)
          y28.System.select)
         .Strategy.max_load);
  let ht = Htriang.standard ~rows:7 () in
  Printf.printf "h-triang(28): quorum size 7 fixed, load %s (paper 25%%)\n"
    (pct (Htriang.system_load ht))
