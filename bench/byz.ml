(* Byzantine extension benchmark: the cost of lifting the paper's
   constructions to Byzantine fault tolerance, and end-to-end register
   safety under coordinated liars. *)

module Masking = Byzantine.Masking
module Engine = Sim.Engine

let crash_fp system p =
  if system.Quorum.System.n <= 26 then Analysis.Failure.exact system ~p
  else
    (Analysis.Failure.monte_carlo ~trials:400_000 (Quorum.Rng.create 3)
       system ~p)
      .mean

let structural () =
  Util.print_header
    "Byzantine lift (extension): cost of masking f faults";
  Printf.printf "  %-26s %-4s %-8s %-10s %-12s %s\n" "system" "n" "|Q|"
    "intersect" "F(0.1)" "F(0.2)";
  let entry label system quorum_size intersect =
    Printf.printf "  %-26s %-4d %-8s %-10d %-12.6f %.6f\n" label
      system.Quorum.System.n quorum_size intersect (crash_fp system 0.1)
      (crash_fp system 0.2)
  in
  (* Crash-only baselines. *)
  entry "h-triang(15)  [f=0]"
    (Core.Htriang.system (Core.Htriang.standard ~rows:5 ()))
    "5" 1;
  entry "majority(15)  [f=0]" (Systems.Majority.make 15) "8" 1;
  (* f = 1. *)
  entry "masking(15,f=1)" (Masking.majority_masking ~n:15 ~f:1) "9" 3;
  entry "boost(3,h-triang(15))"
    (Masking.boost ~k:3
       (Core.Htriang.system (Core.Htriang.standard ~rows:5 ())))
    "15" 3;
  (* f = 2. *)
  entry "masking(15,f=2)" (Masking.majority_masking ~n:15 ~f:2) "10" 5;
  entry "boost(5,h-triang(10))"
    (Masking.boost ~k:5
       (Core.Htriang.system (Core.Htriang.standard ~rows:4 ())))
    "20" 5;
  Printf.printf
    "  (boost trades universe size for structure: quorums stay (2f+1)\n\
    \   copies of the base's sqrt(2n') quorums and keep its load\n\
    \   balancing; the threshold construction stays compact but its\n\
    \   quorums grow toward 2n/3.)\n"

let register_runs () =
  Util.print_header
    "Byzantine register: 38 operations, one coordinated liar (f = 1)";
  Printf.printf "  %-26s %-8s %-12s %s\n" "system" "ops ok" "fabricated"
    "stale+inconclusive";
  let workload =
    [ `Write 1; `Read; `Write 2; `Read; `Read; `Write 3 ]
    @ List.init 32 (fun _ -> `Read)
  in
  List.iter
    (fun (label, system) ->
      let store =
        Protocols.Byz_store.create ~system ~f:1 ~byzantine:[ 1 ] ~timeout:60.0
      in
      let engine =
        Engine.create ~seed:19 ~nodes:system.Quorum.System.n
          (Protocols.Byz_store.handlers store)
      in
      Protocols.Byz_store.bind store engine;
      List.iteri
        (fun k op ->
          let time = 4.0 *. float_of_int (k + 1) in
          let client = 2 + (k mod (system.Quorum.System.n - 2)) in
          match op with
          | `Write value ->
              Engine.schedule engine ~time (fun () ->
                  Protocols.Byz_store.write store ~client ~value)
          | `Read ->
              Engine.schedule engine ~time (fun () ->
                  Protocols.Byz_store.read store ~client))
        workload;
      Engine.run engine;
      Printf.printf "  %-26s %-8d %-12d %d\n" label
        (Protocols.Byz_store.reads_ok store
        + Protocols.Byz_store.writes_ok store)
        (Protocols.Byz_store.fabricated_reads store)
        (Protocols.Byz_store.stale_reads store
        + Protocols.Byz_store.inconclusive_reads store))
    [
      ("plain majority(9)  [weak]", Systems.Majority.make 9);
      ("masking(9,f=1)", Masking.majority_masking ~n:9 ~f:1);
      ( "boost(3,h-triang(10))",
        Masking.boost ~k:3
          (Core.Htriang.system (Core.Htriang.standard ~rows:4 ())) );
    ]

let run () =
  structural ();
  register_runs ()
