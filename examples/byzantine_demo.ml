(* Byzantine fault tolerance from crash-tolerant quorums — the
   adaptation the paper's related work anticipates ("we believe that
   the ideas proposed in this paper can also be adapted and used in
   Byzantine quorum systems").

   A replicated register runs over three quorum systems while two
   replicas lie (fabricated versions and values, coordinated):

   - plain majority: intersections of size 1 cannot outvote a liar —
     updates are lost (stale reads);
   - the masking threshold system (|Q inter Q'| >= 2f+1): safe;
   - the paper's h-triang boosted by the replicated-groups construction
     (one h-triang quorum in each of 2f+1 copies): safe, with the
     hierarchical load-balancing intact.

   Run with: dune exec examples/byzantine_demo.exe *)

module Engine = Sim.Engine
module Masking = Byzantine.Masking

let workload =
  [ `Write 101; `Read; `Write 202; `Read; `Read; `Write 303 ]
  @ List.init 30 (fun _ -> `Read)

let run ~label ~system ~f ~byzantine =
  let store = Protocols.Byz_store.create ~system ~f ~byzantine ~timeout:60.0 in
  let engine =
    Engine.create ~seed:23 ~nodes:system.Quorum.System.n
      (Protocols.Byz_store.handlers store)
  in
  Protocols.Byz_store.bind store engine;
  let correct =
    List.filter
      (fun i -> not (List.mem i byzantine))
      (List.init system.Quorum.System.n (fun i -> i))
  in
  List.iteri
    (fun k op ->
      let time = 4.0 *. float_of_int (k + 1) in
      let client = List.nth correct (k mod List.length correct) in
      match op with
      | `Write value ->
          Engine.schedule engine ~time (fun () ->
              Protocols.Byz_store.write store ~client ~value)
      | `Read ->
          Engine.schedule engine ~time (fun () ->
              Protocols.Byz_store.read store ~client))
    workload;
  Engine.run engine;
  Printf.printf "%-34s reads %2d  fabricated %2d  stale+inconclusive %2d\n"
    label
    (Protocols.Byz_store.reads_ok store)
    (Protocols.Byz_store.fabricated_reads store)
    (Protocols.Byz_store.stale_reads store
    + Protocols.Byz_store.inconclusive_reads store)

let () =
  Printf.printf
    "Byzantine register, f = 1 protocol threshold, TWO lying replicas\n\n";
  Printf.printf "(fabricated must stay 0; a safe system also keeps stale at 0\n";
  Printf.printf " when the liars stay within its tolerance)\n\n";
  (* One liar - within budget for the masking systems. *)
  Printf.printf "-- one Byzantine replica --\n";
  run ~label:"plain majority(9), f=1" ~system:(Systems.Majority.make 9) ~f:1
    ~byzantine:[ 0 ];
  run ~label:"masking(9, f=1)" ~system:(Masking.majority_masking ~n:9 ~f:1)
    ~f:1 ~byzantine:[ 0 ];
  let boosted =
    Masking.boost ~k:3
      (Core.Htriang.system (Core.Htriang.standard ~rows:4 ()))
  in
  run ~label:"boost(3, h-triang(10)), 30 nodes" ~system:boosted ~f:1
    ~byzantine:[ 0 ];
  Printf.printf "\n-- two Byzantine replicas (over budget for f = 1) --\n";
  run ~label:"masking(9, f=1) OVER BUDGET"
    ~system:(Masking.majority_masking ~n:9 ~f:1)
    ~f:1 ~byzantine:[ 2; 6 ];
  run ~label:"masking(13, f=2) still safe"
    ~system:(Masking.majority_masking ~n:13 ~f:2)
    ~f:2 ~byzantine:[ 2; 6 ]
