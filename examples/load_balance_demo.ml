(* Load balancing: what fraction of requests does each process see?

   The paper's section 5 strategy solves a small linear system per
   triangle level so that every element of the hierarchical triangle
   carries exactly the same load 2/(d+1).  This demo prints per-element
   load histograms for that strategy, for a naive uniform-over-quorums
   strategy, and for the LP optimum, on h-triang(15) and h-T-grid(16).

   Run with: dune exec examples/load_balance_demo.exe *)

let bar width x =
  let f = int_of_float (x *. float_of_int width *. 2.0) in
  String.make (min width (max 0 f)) '#'

let show_loads label loads =
  Printf.printf "%s\n" label;
  Array.iteri
    (fun i l -> Printf.printf "  %2d %6.3f %s\n" i l (bar 40 l))
    loads;
  let max_load = Array.fold_left max 0.0 loads in
  Printf.printf "  busiest element: %.4f\n\n" max_load

let () =
  let triangle = Core.Htriang.standard ~rows:5 () in

  (* Section 5 strategy: analytically uniform. *)
  show_loads "h-triang(15), section-5 w1/w2/w3 strategy (exact):"
    (Core.Htriang.strategy_loads triangle);

  (* Naive alternative: uniform over all 84 quorums. *)
  let system = Core.Htriang.system triangle in
  let naive =
    match Quorum.System.quorums system with
    | Ok qs -> Quorum.Strategy.uniform qs
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
  in
  show_loads "h-triang(15), naive uniform-over-quorums strategy:"
    (Quorum.Strategy.element_loads naive);

  (* LP optimum - matches the section-5 strategy's 1/3. *)
  let lp = Analysis.Load.optimal system in
  Printf.printf "h-triang(15) LP-optimal load: %.4f (= 2/(d+1) = %.4f)\n\n"
    lp.load
    (2.0 /. 6.0);

  (* h-T-grid: the flat-row strategy of section 4.3 equalizes loads on
     the 4x4 grid. *)
  let grid = Core.Hgrid.flat ~rows:4 ~cols:4 in
  let strategy = Core.Htgrid.flat_row_strategy grid in
  show_loads "h-T-grid(16 flat), section-4.3 row strategy (exact):"
    (Quorum.Strategy.element_loads strategy);
  Printf.printf
    "average quorum size %.2f; compare the h-grid's fixed 2*sqrt(n)-1 = 7\n"
    (Quorum.Strategy.average_quorum_size strategy);

  (* And what a deployed service would see: empirical counts from the
     simulator-facing select function. *)
  let e =
    Quorum.Strategy.empirical_of_select ~n:15 ~trials:100_000
      (Quorum.Rng.create 1)
      (Core.Htriang.select triangle)
  in
  show_loads "h-triang(15), empirical loads from 100k live selections:"
    e.Quorum.Strategy.loads
