(* Replicated data management with hierarchical grid quorums — the
   workload the h-grid protocol of section 4.1 was designed for.

   Sixteen replicas hold a versioned key-value store.  Reads collect a
   row-cover (one replica per row, recursively), writes install on a
   full-line; because every row-cover intersects every full-line, a
   read always sees the latest completed write.  We drive a read-heavy
   workload through crash-and-recover faults and compare against
   majority quorums on the same universe.

   Run with: dune exec examples/replicated_store_demo.exe *)

module Engine = Sim.Engine
module Rng = Quorum.Rng

(* Examples use the result-typed registry API and render errors
   uniformly. *)
let build_system spec =
  match Core.Registry.build spec with
  | Ok s -> s
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1

let run ~label ~read_system ~write_system =
  let store =
    Protocols.Replicated_store.create ~read_system ~write_system ~timeout:25.0 ()
  in
  let n = read_system.Quorum.System.n in
  let engine =
    Engine.create ~seed:5 ~nodes:n (Protocols.Replicated_store.handlers store)
  in
  Protocols.Replicated_store.bind store engine;
  (* Transient crashes: every replica spends ~10% of its life down. *)
  Sim.Failure_injector.iid_faults engine ~rng:(Rng.create 3) ~p:0.10
    ~mean_downtime:8.0 ~horizon:500.0;
  (* The unified workload spec; [Error] rendered rather than raised. *)
  let workload =
    match Analysis.Workload.make ~read_fraction:0.8 () with
    | Ok w -> w
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
  in
  let issued =
    match
      Protocols.Workload.read_write_mix_w engine ~rng:(Rng.create 4) ~rate:2.0
        ~horizon:500.0 ~workload ~keys:8
        ~read:(fun ~client ~key ->
          Protocols.Replicated_store.read store ~client ~key)
        ~write:(fun ~client ~key ~value ->
          Protocols.Replicated_store.write store ~client ~key ~value)
    with
    | Ok n -> n
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
  in
  Engine.run engine;
  let reads = Protocols.Replicated_store.reads_ok store in
  let writes = Protocols.Replicated_store.writes_ok store in
  Printf.printf "%s\n" label;
  Printf.printf "  issued %d ops: %d reads ok, %d writes ok, %d timed out, %d refused\n"
    issued reads writes
    (Protocols.Replicated_store.timeouts store)
    (Protocols.Replicated_store.unavailable store);
  Printf.printf "  consistency: %d stale reads (must be 0)\n"
    (Protocols.Replicated_store.stale_reads store);
  let lat = Protocols.Replicated_store.op_latency store in
  Printf.printf "  messages: %d\n  read latency:  %s\n  write latency: %s\n\n"
    (Engine.messages_sent engine)
    (Obs.Metrics.summary ~labels:[ ("op", "read") ] lat)
    (Obs.Metrics.summary ~labels:[ ("op", "write") ] lat)

let () =
  Printf.printf
    "Versioned replicated store, 16 replicas, 10%% transient downtime\n\n";
  (* The paper's replicated-data setting: asymmetric read/write quorums
     from the hierarchical grid — cheap reads (4 replicas), write
     quorums that any read intersects. *)
  run ~label:"h-grid read (row-cover) / write (full-line) quorums:"
    ~read_system:(build_system "hgrid-read(4x4)")
    ~write_system:(build_system "hgrid-write(4x4)");
  (* Symmetric baseline: majority for both operations. *)
  run ~label:"majority quorums for both reads and writes:"
    ~read_system:(build_system "majority(16)")
    ~write_system:(build_system "majority(16)");
  (* Symmetric h-T-grid: one mutual-exclusion quorum family. *)
  run ~label:"h-T-grid quorums for both (mutual-exclusion family):"
    ~read_system:(build_system "htgrid(4x4)")
    ~write_system:(build_system "htgrid(4x4)")
