(* Quickstart: build the paper's hierarchical triangle over 15
   processes, look at its quorums, check the intersection property, and
   compute the three quality metrics (size, failure probability, load).

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* The triangle with 5 rows: 15 processes, quorums of exactly 5. *)
  let triangle = Core.Htriang.standard ~rows:5 () in
  let system = Core.Htriang.system triangle in
  Printf.printf "system: %s\n\n" system.Quorum.System.name;
  print_string (Core.Htriang.render triangle);

  (* Every pair of quorums intersects (Definition 3.1 / Theorem 5.1). *)
  let quorums =
    match Quorum.System.quorums system with
    | Ok qs -> qs
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
  in
  Printf.printf "\n%d quorums, intersection property: %b\n"
    (List.length quorums)
    (Quorum.Coterie.all_intersect quorums);

  (* Pick a quorum with the load-balancing strategy of section 5. *)
  let rng = Quorum.Rng.create 42 in
  let live = Quorum.Bitset.universe 15 in
  (match Core.Htriang.select triangle rng ~live with
  | Some q -> Format.printf "a quorum: %a@." Quorum.Bitset.pp q
  | None -> assert false);

  (* Quorum size statistics. *)
  let stats = Analysis.Metrics.of_system system in
  Printf.printf "quorum size: min %d, max %d (constant, = number of rows)\n"
    stats.min_size stats.max_size;

  (* Failure probability: every process crashes independently with
     probability p; how likely is it that no quorum is fully live? *)
  List.iter
    (fun p ->
      Printf.printf "F_%.1f = %.6f\n" p
        (Core.Htriang.failure_probability triangle ~p))
    [ 0.1; 0.2; 0.3; 0.5 ];

  (* Load: the busiest process handles 2/(d+1) of requests under the
     w1/w2/w3 strategy - almost the theoretical optimum 1/sqrt(n). *)
  Printf.printf "load: %.3f (lower bound 1/sqrt n = %.3f)\n"
    (Core.Htriang.system_load triangle)
    (1.0 /. sqrt 15.0);

  (* Compare against simple majority voting on the same universe. *)
  let majority = Systems.Majority.make 15 in
  Printf.printf "\nmajority(15) for contrast: quorums of %d, load %.3f\n"
    (Analysis.Metrics.smallest_quorum majority)
    (Analysis.Load.optimal majority).load
