(* Availability explorer: sweep the individual crash probability p for
   every construction in the catalogue and print failure-probability
   curves, cross-checking the analytic recursions against exact
   enumeration and Monte Carlo on the way.

   Run with: dune exec examples/availability_explorer.exe [spec ...]
   e.g.      dune exec examples/availability_explorer.exe -- "htriang(21)" "cwlog(20)" *)

let default_specs =
  [
    "majority(15)";
    "hqs(5-3)";
    "cwlog(14)";
    "tree(15)";
    "fpp(13)";
    "triangle(15)";
    "grid-rw(4x4)";
    "tgrid(4x4)";
    "hgrid(4x4)";
    "htgrid(4x4)";
    "y(15)";
    "htriang(15)";
  ]

let sweep = [ 0.02; 0.05; 0.1; 0.15; 0.2; 0.3; 0.4; 0.5 ]

(* Examples use the result-typed registry API and render errors
   uniformly. *)
let build_system spec =
  match Core.Registry.build spec with
  | Ok s -> s
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1

let () =
  let specs =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> default_specs
    | l -> l
  in
  Printf.printf "%-14s" "p:";
  List.iter (Printf.printf " %8.2f") sweep;
  print_newline ();
  (* A bad spec renders its error in place but the sweep continues —
     and the process must still exit non-zero so scripts notice. *)
  let failed = ref false in
  List.iter
    (fun spec ->
      match Core.Registry.build spec with
      | Error msg ->
          failed := true;
          Printf.printf "%-14s error: %s\n" spec msg
      | Ok system ->
          let poly =
            if system.Quorum.System.n <= 24 then
              Some (Analysis.Failure.exact_poly system)
            else None
          in
          Printf.printf "%-14s" spec;
          List.iter
            (fun p ->
              let fp =
                match poly with
                | Some poly -> Quorum.Failure_poly.eval poly ~p
                | None ->
                    Analysis.Failure.failure_probability ~mc_trials:200_000
                      system ~p
              in
              Printf.printf " %8.5f" fp)
            sweep;
          print_newline ())
    specs;
  (* Monte-Carlo cross-check for one system: the estimate must bracket
     the exact value. *)
  print_newline ();
  let system = build_system "htriang(15)" in
  let rng = Quorum.Rng.create 99 in
  Printf.printf "Monte-Carlo vs exact, %s:\n" system.Quorum.System.name;
  List.iter
    (fun p ->
      let exact = Analysis.Failure.exact system ~p in
      let est = Analysis.Failure.monte_carlo ~trials:200_000 rng system ~p in
      Printf.printf
        "  p=%.2f exact=%.5f mc=%.5f +-%.5f %s\n" p exact est.mean
        est.half_width
        (if abs_float (est.mean -. exact) <= est.half_width then "ok"
         else "OUTSIDE CI"))
    [ 0.1; 0.3; 0.5 ];
  if !failed then exit 1
