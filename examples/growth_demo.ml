(* Growing the hierarchical triangle online (section 5, "Introducing
   new elements") — the growth rules executed as live reconfigurations
   while clients keep reading and writing.

   We start a replicated register on h-triang(15), grow the triangle
   twice (adding processes, improving availability) and finally jump to
   the native h-triang(21); the consistency monitor confirms no read
   ever misses a committed write across any switch.

   Run with: dune exec examples/growth_demo.exe *)

module Engine = Sim.Engine
module Reconfig = Protocols.Reconfig

let () =
  let t0 = Core.Htriang.standard ~rows:5 () in
  let t1 = Option.get (Core.Htriang.grow_unit_triangle t0) in
  let t2 = Option.get (Core.Htriang.grow_square_grid t1) in
  let t3 = Core.Htriang.standard ~rows:6 () in
  Printf.printf "configurations (failure probability at p = 0.1):\n";
  List.iter
    (fun (label, t) ->
      Printf.printf "  %-28s n=%-3d F(0.1)=%.6f\n" label t.Core.Htriang.n
        (Core.Htriang.failure_probability t ~p:0.1))
    [
      ("h-triang(15)", t0);
      ("+ unit-triangle growth", t1);
      ("+ square-grid growth", t2);
      ("native h-triang(21)", t3);
    ];
  let universe = 21 in
  let rc =
    Reconfig.create ~initial:(Core.Htriang.system t0) ~universe ~timeout:40.0 ()
  in
  let engine = Engine.create ~seed:3 ~nodes:universe (Reconfig.handlers rc) in
  Reconfig.bind rc engine;
  (* Continuous workload: 60 operations over 120 time units. *)
  for k = 0 to 59 do
    let time = 2.0 *. float_of_int (k + 1) in
    let client = (k * 11) mod 15 in
    if k mod 4 = 0 then
      Engine.schedule engine ~time (fun () ->
          Reconfig.write rc ~client ~value:(500 + k))
    else Engine.schedule engine ~time (fun () -> Reconfig.read rc ~client)
  done;
  (* Grow at t = 30, 60, 90. *)
  List.iteri
    (fun i t ->
      Engine.schedule engine
        ~time:(30.0 *. float_of_int (i + 1))
        (fun () ->
          Reconfig.reconfigure rc ~coordinator:(i + 2)
            (Core.Htriang.system t)))
    [ t1; t2; t3 ];
  Engine.run engine;
  Printf.printf "\nafter the run:\n";
  Printf.printf "  epoch switches: %d (final epoch %d)\n"
    (Reconfig.epoch_switches rc) (Reconfig.current_epoch rc);
  Printf.printf "  reads %d, writes %d, retried %d, abandoned %d\n"
    (Reconfig.reads_ok rc) (Reconfig.writes_ok rc) (Reconfig.retries rc)
    (Reconfig.failed rc);
  Printf.printf "  stale reads across all switches: %d (must be 0)\n"
    (Reconfig.stale_reads rc)
