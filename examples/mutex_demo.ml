(* Distributed mutual exclusion over the hierarchical triangle: fifteen
   nodes contend for a critical section through Maekawa-style quorum
   locking, first failure-free, then with two crashed processes.

   This is exactly the scenario the paper's introduction motivates: a
   decentralized lock whose availability survives node crashes because
   any live quorum suffices.

   Run with: dune exec examples/mutex_demo.exe *)

module Engine = Sim.Engine

(* Examples use the result-typed registry API and render errors
   uniformly. *)
let build_system spec =
  match Core.Registry.build spec with
  | Ok s -> s
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1

let run ~label ~faults ~requests =
  let system = build_system "htriang(15)" in
  let mx = Protocols.Mutex.create ~system ~cs_duration:1.0 () in
  let engine = Engine.create ~seed:7 ~nodes:15 (Protocols.Mutex.handlers mx) in
  Protocols.Mutex.bind mx engine;
  Sim.Failure_injector.scripted engine faults;
  (* Closed-loop contention: every node keeps asking for the lock. *)
  Protocols.Workload.staggered_requests engine ~every:0.2 ~count:requests
    (fun ~client -> Protocols.Mutex.request mx ~node:client);
  Engine.run engine;
  Printf.printf "%s\n" label;
  Printf.printf "  critical sections completed: %d / %d requested\n"
    (Protocols.Mutex.entries mx) requests;
  Printf.printf "  safety violations:           %d (must be 0)\n"
    (Protocols.Mutex.violations mx);
  Printf.printf "  requests with no live quorum: %d\n"
    (Protocols.Mutex.unavailable mx);
  Printf.printf "  messages per entry:          %.1f\n"
    (float_of_int (Engine.messages_sent engine)
    /. float_of_int (max 1 (Protocols.Mutex.entries mx)));
  Printf.printf "  waiting time: %s\n\n"
    (Obs.Metrics.summary (Protocols.Mutex.acquire_latency mx))

let () =
  Printf.printf
    "Maekawa-style mutual exclusion over h-triang(15) quorums\n\n";
  run ~label:"no failures, 45 requests under contention:" ~faults:[]
    ~requests:45;
  (* Crash two processes up front: quorum selection routes around them;
     the h-triang keeps a live quorum with very high probability. *)
  run
    ~label:"processes 3 and 12 crashed at t=0 (live-aware selection):"
    ~faults:
      [
        (0.0, Sim.Failure_injector.Crash 3);
        (0.0, Sim.Failure_injector.Crash 12);
      ]
    ~requests:45;
  (* For contrast: the singleton coterie is a single point of failure;
     crash its only member and nothing can be served. *)
  let system = build_system "singleton(15)" in
  let mx = Protocols.Mutex.create ~system ~cs_duration:1.0 () in
  let engine = Engine.create ~seed:8 ~nodes:15 (Protocols.Mutex.handlers mx) in
  Protocols.Mutex.bind mx engine;
  Sim.Failure_injector.scripted engine [ (0.0, Sim.Failure_injector.Crash 0) ];
  Protocols.Workload.staggered_requests engine ~every:0.2 ~count:10
    (fun ~client -> Protocols.Mutex.request mx ~node:client);
  Engine.run engine;
  Printf.printf
    "singleton coterie with its only member crashed: %d served, %d refused\n"
    (Protocols.Mutex.entries mx)
    (Protocols.Mutex.unavailable mx)
